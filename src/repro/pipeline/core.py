"""Cycle-level out-of-order core.

The core replays a dynamic micro-op trace through a model of the paper's
machine: an 8-wide rename/issue/commit pipeline with a 512-entry ROB,
300-entry issue queue, 128-entry load queue, and 64-entry store queue
(Section 4.1).  The store-queue access behaviour — associative vs. indexed,
ideal vs. realistic latency, with or without delay prediction — is supplied
by an :class:`~repro.lsu.policies.SQPolicy`.

Modelling notes (and deliberate simplifications, shared by *all*
configurations so relative comparisons are preserved):

* The model is trace driven: wrong-path instructions are not fetched.  A
  mispredicted branch instead blocks fetch until the branch resolves plus a
  front-end redirect penalty, the standard trace-driven treatment.
* Scheduler replay is modelled as a penalty added to a load's value-broadcast
  time whenever its actual latency exceeds the latency the scheduler assumed
  when speculatively waking dependants (cache misses, and SQ forwarding when
  the SQ is slower than the cache), plus a replay counter.
* Re-execution-detected violations (memory-ordering violations and the
  indexed SQ's mis-forwardings) flush everything younger than the offending
  load; the load itself commits with the re-executed (correct) value.
* Fetch and decode are folded into dispatch: up to ``rename_width`` trace
  micro-ops enter the window per cycle, at most one taken branch per cycle,
  provided no redirect is pending and no structure is full.  The explicit
  front-end depth appears only in the redirect/flush penalties.

Performance notes.  The cycle loop is event-aware (PR 1): when nothing is
ready to issue and dispatch cannot make progress, the clock jumps directly
to the next cycle at which anything can happen, with the skipped cycles
attributed to the same stall counters the straight-line loop would have
charged (``CoreConfig.idle_skip`` disables the fast-forward for A/B
checking).  The ready queue is one heap per issue class so entries blocked
only by a per-class bandwidth limit are never popped and re-pushed.

The per-uop path is **two-plane** (PR 5): when :meth:`OutOfOrderCore.run` is
handed an :class:`~repro.isa.plane.EncodedOps` trace (what the workload
generators produce), dispatch consumes precomputed static-plane metadata —
kind code, issue-class routing, default latency, register tuples — through
flat list indexing, and the in-flight record (:class:`_Inflight`) carries
only the dynamic fields, initialised per kind.  A
:class:`~repro.isa.trace.DynamicTrace` (or any micro-op sequence) takes the
back-compat *object path*: the same machine driven by per-uop attribute
probing on full :class:`~repro.isa.uop.MicroOp` objects, bit-identical to
the encoded path (golden- and equivalence-tested) and to the pre-two-plane
core — it is also the "before" leg of ``benchmarks/bench_core_throughput.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.plane import (
    ISSUE_CLASS_OF,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
    EncodedOps,
)
from repro.isa.uop import DEFAULT_LATENCIES, MicroOp
from repro.isa.registers import REG_ZERO
from repro.lsu.load_queue import LoadQueue, LoadQueueEntry
from repro.lsu.policies import LoadCommitInfo, LoadPrediction, SQPolicy
from repro.lsu.store_queue import StoreQueue, StoreQueueEntry
from repro.memory.mlp import NonBlockingHierarchy, build_hierarchy
from repro.memory.image import MemoryImage
from repro.core.ssn import SSNAllocator
from repro.pipeline.config import CoreConfig
from repro.pipeline.rename import ARCH_READY, RegisterAliasTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats


#: Issue-bandwidth class of each op class.  The canonical routing table now
#: lives on the static plane (:data:`repro.isa.plane.ISSUE_CLASS_OF`); this
#: alias keeps the old name importable.
_ISSUE_CLASS = ISSUE_CLASS_OF

_ISSUE_CLASS_KEYS = ("int", "fp", "branch", "load", "store")


class _Inflight:
    """Per-dynamic-instruction record (kept lean; this is the hot structure).

    Only the fields every instruction needs are initialised here; the
    dispatch stage fills in the kind-specific fields (loads: prediction and
    forwarding state; stores: SSN/value/undo logs; branches: the
    misprediction flag).  Reads are guarded by ``kind`` throughout the core,
    so an unset slot is never touched.
    """

    __slots__ = (
        "seq", "kind", "pc", "dest", "issue_class", "latency", "squashed",
        # scheduling state
        "wait_srcs", "wait_fwd", "wait_dly", "issued", "completed",
        "consumers", "ready_pushed",
        # timing
        "other_ready_cycle", "completion_cycle",
        # rename repair
        "rat_undo",
        # memory dynamic fields (loads and stores)
        "addr", "size",
        # store state
        "value", "ssn", "sat_undo", "oracle_undo", "fwd_waiters",
        # load state
        "prediction", "ssn_at_rename", "oracle_dep_ssn",
        "spec_value", "forwarded", "forward_ssn", "svw_ssn", "should_forward",
        "delay_cycles", "dly_clear_cycle",
        # branch state
        "mispredicted",
    )

    def __init__(self, seq: int, kind: int, pc: int, dest: Optional[int],
                 issue_class: str, latency: int) -> None:
        self.seq = seq
        self.kind = kind
        self.pc = pc
        self.dest = dest
        self.issue_class = issue_class
        self.latency = latency
        self.squashed = False
        self.wait_srcs = 0
        self.wait_fwd = False
        self.wait_dly = False
        self.issued = False
        self.completed = False
        # Lazily allocated (most records never acquire consumers/waiters).
        self.consumers: Optional[List["_Inflight"]] = None
        self.ready_pushed = False
        self.other_ready_cycle = -1
        self.completion_cycle = -1
        self.rat_undo: Optional[Tuple[int, int]] = None

    def init_load(self) -> None:
        self.prediction: Optional[LoadPrediction] = None
        self.ssn_at_rename = 0
        self.oracle_dep_ssn = 0
        self.spec_value = 0
        self.forwarded = False
        self.forward_ssn = 0
        self.svw_ssn = 0
        self.should_forward = False
        self.delay_cycles = 0
        self.dly_clear_cycle = -1

    def init_store(self) -> None:
        self.ssn = 0
        self.sat_undo = None
        self.oracle_undo: Optional[List[Optional[Tuple[int, int]]]] = None
        self.fwd_waiters: Optional[List["_Inflight"]] = None


@dataclass
class SimulationResult:
    """Result of simulating one trace under one SQ configuration."""

    workload: str
    policy: str
    stats: SimStats
    config: CoreConfig
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class OutOfOrderCore:
    """Trace-driven cycle-level model of the paper's processor."""

    #: Abort if no instruction commits for this many consecutive cycles.
    DEADLOCK_LIMIT = 50_000

    #: Which detailed-core kernel this class implements (reported through
    #: ``ExperimentEngine.last_run_stats`` and the BENCH envelopes).  The
    #: vector / compiled kernels (:mod:`repro.pipeline.vector`) override it.
    kernel_name = "object"

    def __init__(self, config: CoreConfig, policy: SQPolicy) -> None:
        self.config = config
        self.policy = policy
        self.stats = SimStats()

        self.hierarchy = build_hierarchy(config.memory)
        #: The non-blocking hierarchy when one is being modelled, else None
        #: (blocking model *and* the mshr_entries=1 degenerate mode, which
        #: is bit-identical to it).  Gates the MSHR integration: the
        #: issue-stage structural stall and the fill-timed load path.
        self._mlp_hier = self.hierarchy \
            if isinstance(self.hierarchy, NonBlockingHierarchy) \
            and self.hierarchy.nonblocking else None
        self.memory = MemoryImage()
        self.branch_unit = BranchUnit(config.branch_predictor)
        self.rat = RegisterAliasTable()
        self.rob = ReorderBuffer(config.rob_size)
        self.load_queue = LoadQueue(config.load_queue_size)
        self.store_queue = StoreQueue(config.store_queue_size)
        self.ssn_alloc = SSNAllocator(bits=config.ssn_bits)

        # Dynamic state.
        self._cycle = 0
        self._fetch_seq = 0
        self._fetch_resume_cycle = 0
        self._fetch_blocked_on: Optional[_Inflight] = None
        self._iq_occupancy = 0
        #: In-flight records indexed by dynamic sequence number (sized to the
        #: trace at run start; committed/squashed slots are cleared to None).
        self._records: List[Optional[_Inflight]] = []
        self._store_by_ssn: Dict[int, _Inflight] = {}
        self._dly_waiters: Dict[int, List[_Inflight]] = {}
        # One ready heap per issue class; entries blocked only by per-class
        # bandwidth stay put instead of being popped and re-pushed every cycle.
        self._ready: Dict[str, List[Tuple[int, int, _Inflight]]] = {
            key: [] for key in _ISSUE_CLASS_KEYS}
        #: The same heaps in _ISSUE_CLASS_KEYS order (issue-stage indexing).
        self._heap_list = [self._ready[key] for key in _ISSUE_CLASS_KEYS]
        #: Entries currently in the ready heaps, *including* stale
        #: (squashed/issued) ones awaiting purge: zero means every heap is
        #: empty, which is all the per-cycle idle/issue guards need to know.
        self._ready_count = 0
        self._ready_tiebreak = 0
        self._completions: Dict[int, List[_Inflight]] = {}
        # Oracle last-writer tracker: byte address -> (seq, ssn) of the
        # youngest dispatched store writing that byte.
        self._last_writer: Dict[int, Tuple[int, int]] = {}

        # Trace access, bound per run (encoded fast path or object path).
        self._encoded: Optional[EncodedOps] = None
        self._uops: List[MicroOp] = []
        self._total = 0
        self._dispatch_stage = self._dispatch_stage_obj

    # ---------------------------------------------------------- state import --

    def import_state(self, state) -> None:
        """Adopt functionally warmed machine state before a detailed run.

        ``state`` is a :class:`~repro.sampling.functional.FunctionalState`:
        its branch unit, memory hierarchy, memory image, SSN counters, and
        policy replace this core's freshly constructed ones, and its exact
        last-writer map seeds the oracle dependence tracker (with a sentinel
        sequence number of ``-1`` so flush repair can never confuse an
        imported writer with an in-flight store).  Statistics *counters* on
        the imported components are reset so a subsequent run reports only
        its own activity; the predictive/tag state itself stays warm.
        """
        from repro.lsu.policies import PolicyStats
        from repro.core.svw import SVWStats

        self.hierarchy = state.hierarchy
        self._mlp_hier = self.hierarchy \
            if isinstance(self.hierarchy, NonBlockingHierarchy) \
            and self.hierarchy.nonblocking else None
        self.memory = state.memory
        self.branch_unit = state.branch_unit
        self.ssn_alloc = state.ssn_alloc
        self.policy = state.policy
        self._last_writer = {
            byte_addr: (-1, entry[0]) for byte_addr, entry in state.last_writer.items()}
        self.hierarchy.reset_stats()
        self.branch_unit.reset_stats()
        self.policy.stats = PolicyStats()
        self.policy.svw.stats = SVWStats()

    def export_state(self):
        """Export the core's long-lived state, symmetric to :meth:`import_state`.

        Returns a :class:`~repro.sampling.functional.FunctionalState` bundling
        the live branch unit, memory hierarchy, memory image, SSN counters,
        policy, and oracle last-writer map — everything a subsequent
        :meth:`import_state` (on this or another core) adopts.  Serialising
        the bundle (the checkpoint store pickles it) freezes a copy.

        Intended for a *drained* core (between runs): in-flight window state
        (ROB/IQ/LQ/SQ occupancy, pending completions) is short-lived by
        design and is not exported.  The exported last-writer map keeps each
        byte's youngest writer SSN; the writer's PC and dynamic index are
        not tracked per byte by the detailed core and are exported as
        ``(0, -1)`` sentinels — :meth:`import_state` only consumes the SSN.
        """
        from repro.sampling.functional import FunctionalState

        return FunctionalState(
            config=self.config,
            branch_unit=self.branch_unit,
            hierarchy=self.hierarchy,
            memory=self.memory,
            ssn_alloc=self.ssn_alloc,
            policy=self.policy,
            last_writer={byte_addr: (entry[1], 0, -1)
                         for byte_addr, entry in self._last_writer.items()},
            instructions_warmed=self.stats.committed,
        )

    # ------------------------------------------------------------------ run --

    def run(self, trace, warm_memory: bool = True,
            stats_warmup_fraction: float = 0.0,
            stats_warmup_instructions: Optional[int] = None,
            stats_measure_instructions: Optional[int] = None) -> SimulationResult:
        """Simulate ``trace`` to completion and return the result.

        ``trace`` is either an :class:`~repro.isa.plane.EncodedOps` (the
        static-plane fast path) or a :class:`~repro.isa.trace.DynamicTrace`
        / micro-op sequence (the back-compat object path); both paths are
        bit-identical.

        ``stats_warmup_fraction`` discards the statistics accumulated over the
        first fraction of committed instructions (while keeping all
        microarchitectural state: caches, predictors, branch history), the
        same role the paper's 8% warm-up plays for its samples.  The reported
        ``cycles`` likewise cover only the measured region.

        ``stats_warmup_instructions`` is the exact-count form of the same
        knob (used by the sampling subsystem, whose detailed warm-up is
        specified in instructions); it overrides the fraction when given.

        ``stats_measure_instructions`` stops the simulation once that many
        *post-warm-up* instructions have committed, leaving younger
        instructions in flight.  Interval sampling uses this so a measured
        region ends mid-steady-state (window still full) instead of
        charging the interval for the pipeline drain that a full run would
        have overlapped with subsequent instructions.
        """
        if not 0.0 <= stats_warmup_fraction < 1.0:
            raise ValueError("stats_warmup_fraction must be in [0, 1)")
        self._bind_trace(trace)
        if warm_memory:
            self._warm_caches()

        total = self._total
        if stats_warmup_instructions is not None:
            if not 0 <= stats_warmup_instructions < max(total, 1):
                raise ValueError("stats_warmup_instructions must be in [0, len(trace))")
            warmup_committed = stats_warmup_instructions
        else:
            warmup_committed = int(total * stats_warmup_fraction)
        stop_committed = total
        if stats_measure_instructions is not None:
            if stats_measure_instructions <= 0:
                raise ValueError("stats_measure_instructions must be positive")
            stop_committed = min(total, warmup_committed + stats_measure_instructions)
        warmup_done = warmup_committed == 0
        warmup_cycle_offset = 0
        warmup_instr_offset = 0
        warmup_l1_misses = 0
        warmup_l2_misses = 0
        mlp_hier = self._mlp_hier
        # MLP counters live on the hierarchy (cumulative); delta against a
        # run-start snapshot, re-taken at the warm-up reset, mirrors the
        # miss-counter accounting below.
        mlp_base = mlp_hier.mlp_stats.snapshot() if mlp_hier is not None else None
        last_commit_cycle = 0
        max_cycles = self.config.max_cycles
        idle_skip = self.config.idle_skip
        dispatch_stage = self._dispatch_stage
        stats = self.stats
        # Stage guards hoisted out of the stage bodies: a stage that cannot
        # possibly do work this cycle is not even called.  The guarded
        # structures (ROB deque, ready heaps) are stable objects.
        rob_entries = self.rob._entries
        completions = self._completions

        # ``stats.cycles`` is derived from ``_cycle`` only when the counters
        # are read (loop exit and the warm-up reset) — nothing reads it
        # mid-cycle, so the per-cycle store is saved.
        while stats.committed < stop_committed:
            if idle_skip and self._ready_is_empty():
                self._skip_idle_cycles(total, max_cycles)
            self._cycle += 1

            if completions:
                self._process_completions()
            if rob_entries and rob_entries[0].completed:
                committed_now = self._commit_stage()
            else:
                committed_now = 0
            if self._ready_count:
                self._issue_stage()
            if self._cycle < self._fetch_resume_cycle \
                    or self._fetch_blocked_on is not None:
                stats.fetch_stall_cycles += 1
            elif self._fetch_seq < total:
                dispatch_stage()

            if not warmup_done and stats.committed >= warmup_committed:
                # Reset the counters; keep every piece of machine state warm.
                warmup_done = True
                warmup_cycle_offset = self._cycle
                warmup_instr_offset = stats.committed
                warmup_l1_misses = self.hierarchy.stats.l1_misses
                warmup_l2_misses = self.hierarchy.stats.l2_misses
                if mlp_hier is not None:
                    mlp_base = mlp_hier.mlp_stats.snapshot()
                preserved_committed = stats.committed
                stats = self.stats = SimStats()
                stats.committed = preserved_committed
                stats.cycles = 0

            if committed_now:
                last_commit_cycle = self._cycle
            elif self._cycle - last_commit_cycle > self.DEADLOCK_LIMIT:
                ready = sum(len(heap) for heap in self._ready.values())
                raise RuntimeError(
                    f"simulation deadlock at cycle {self._cycle}: "
                    f"{stats.committed}/{total} committed, ROB={len(self.rob)}, "
                    f"ready={ready}, fetch_seq={self._fetch_seq}")
            if max_cycles is not None and self._cycle >= max_cycles:
                break

        # Report only the measured (post-warm-up) region — the miss
        # counters subtract the warm-up share so every SimStats field
        # covers exactly the same instructions (the hierarchy's own stats
        # stay cumulative for the run and feed the l1_miss_rate extra).
        stats.cycles = self._cycle - warmup_cycle_offset
        stats.committed -= warmup_instr_offset
        stats.l1_misses = self.hierarchy.stats.l1_misses - warmup_l1_misses
        stats.l2_misses = self.hierarchy.stats.l2_misses - warmup_l2_misses
        extra = {
            "branch_misprediction_rate": self.branch_unit.misprediction_rate,
            "svw_reexecution_rate": self.policy.svw.stats.reexecution_rate,
            "l1_miss_rate": self.hierarchy.stats.l1_miss_rate(),
            "rob_max_occupancy": float(self.rob.max_occupancy),
        }
        if mlp_hier is not None:
            mlp_stats = mlp_hier.mlp_stats
            delta = [after - before
                     for after, before in zip(mlp_stats.snapshot(), mlp_base)]
            stats.mshr_modeled = 1
            stats.mshr_demand_misses = delta[0]
            stats.misses_coalesced = delta[1]
            stats.mshr_inflight_sum = delta[2]
            stats.prefetch_issued = delta[3]
            stats.prefetch_useful = delta[4]
            # Occupancy is a peak over the whole run (warm-up included):
            # peaks have no warm-up share to subtract.
            stats.mshr_occupancy = mlp_stats.occupancy_peak
            extra["mlp_avg"] = stats.mlp_avg
            extra["mshr_occupancy"] = float(stats.mshr_occupancy)
        return SimulationResult(workload=self._trace_name, policy=self.policy.name,
                                stats=stats, config=self.config, extra=extra)

    def _bind_trace(self, trace) -> None:
        """Bind the per-run trace accessors for one of the two paths."""
        self._trace_name = getattr(trace, "name", "trace")
        # Policies that keep the base-class SVW re-execution filter / store
        # commit hooks get the inlined commit-path versions; overrides are
        # honoured via the methods.  Checked once per run, after any
        # import_state has installed the policy actually being simulated.
        policy_type = type(self.policy)
        self._fast_reexec = (policy_type.needs_reexecution
                             is SQPolicy.needs_reexecution)
        self._fast_store_commit = (policy_type.store_committed
                                   is SQPolicy.store_committed)
        if isinstance(trace, EncodedOps):
            self._encoded = trace
            self._uops = []
            self._total = len(trace)
        else:
            # Materialise exactly once: a bare iterator/generator input must
            # not be consumed twice (once for sizing, once for the loop).
            self._encoded = None
            self._uops = trace.uops if hasattr(trace, "uops") else list(trace)
            self._total = len(self._uops)
        self._records = [None] * self._total
        self._dispatch_stage = (self._make_dispatch_enc()
                                if self._encoded is not None
                                else self._dispatch_stage_obj)

    def _peek_kind(self, seq: int) -> int:
        """Dispatch kind of the next trace micro-op (idle-skip peeking)."""
        encoded = self._encoded
        if encoded is not None:
            return encoded.plane.kind[encoded.sidx[seq]]
        uop = self._uops[seq]
        if uop.is_load:
            return KIND_LOAD
        if uop.is_store:
            return KIND_STORE
        return KIND_OTHER

    def _warm_caches(self) -> None:
        """Pre-touch the lines referenced by the first portion of the trace.

        The paper warms caches/predictors for 8% of each sample; touching the
        first few thousand accesses approximates starting from a warm state
        without perturbing the timing statistics."""
        budget = min(self._total, 4000)
        warm = self.hierarchy.warm
        encoded = self._encoded
        if encoded is not None:
            kind = encoded.plane.kind
            sidx = encoded.sidx
            addr = encoded.addr
            for i in range(budget):
                if kind[sidx[i]] >= KIND_LOAD:   # loads and stores carry mem
                    warm(addr[i])
        else:
            for uop in self._uops[:budget]:
                if uop.mem is not None:
                    warm(uop.mem.addr)

    # ------------------------------------------------------------- fast-forward --

    def _ready_is_empty(self) -> bool:
        """True when the ready heaps are completely empty.

        Conservative: stale (squashed/issued) entries awaiting purge count
        as "ready", so the idle fast-forward simply does not engage on the
        rare post-flush cycles until the issue stage has purged them — the
        straight-line path it falls back to is bit-identical by
        construction.
        """
        return not self._ready_count

    def _skip_idle_cycles(self, total: int, max_cycles: Optional[int]) -> None:
        """Advance the clock to just before the next cycle anything can happen.

        Called only when the ready heaps are empty.  If dispatch also cannot
        make progress next cycle, the machine state is frozen until one of:

        * a scheduled completion (``self._completions``),
        * the ROB head's commit-delay expiry, or
        * the fetch-redirect resume point,

        so the loop may jump straight there.  The skipped cycles are charged
        to the stall counters exactly as the straight-line loop would have
        charged them, keeping every statistic bit-identical.
        """
        nxt = self._cycle + 1
        # Would dispatch make progress at ``nxt``?  If so, no skipping.
        if self._fetch_blocked_on is None and nxt >= self._fetch_resume_cycle \
                and self._fetch_seq < total:
            kind = self._peek_kind(self._fetch_seq)
            if not (self.rob.is_full()
                    or self._iq_occupancy >= self.config.issue_queue_size
                    or (kind == KIND_LOAD and self.load_queue.is_full())
                    or (kind == KIND_STORE and self.store_queue.is_full())):
                return

        target: Optional[int] = None
        if self._completions:
            target = min(self._completions)
        head = self.rob.head()
        if head is not None and head.completed:
            commit_at = head.completion_cycle + self.config.backend_commit_delay
            if target is None or commit_at < target:
                target = commit_at
        if (self._fetch_blocked_on is None and self._fetch_seq < total
                and self._fetch_resume_cycle > nxt):
            if target is None or self._fetch_resume_cycle < target:
                target = self._fetch_resume_cycle
        if target is None:
            return  # genuine deadlock; let the straight-line loop detect it
        if max_cycles is not None and target > max_cycles:
            target = max_cycles
        if target <= nxt:
            return
        self._account_idle(nxt, target - 1, total)
        self._cycle = target - 1

    def _account_idle(self, first: int, last: int, total: int) -> None:
        """Charge skipped cycles ``first..last`` to the stall counters.

        Mirrors what the dispatch stage would have counted had each cycle
        been executed: a fetch stall while redirect-blocked, then (with fetch
        available but a structure full) the structural stall the first
        undispatchable micro-op would have hit.  State cannot change inside
        the window, so the attribution is constant apart from the
        redirect-resume boundary.
        """
        n = last - first + 1
        stats = self.stats
        if self._fetch_blocked_on is not None:
            stats.fetch_stall_cycles += n
            return
        fetch_blocked = min(n, max(0, self._fetch_resume_cycle - first))
        stats.fetch_stall_cycles += fetch_blocked
        rest = n - fetch_blocked
        if rest <= 0 or self._fetch_seq >= total:
            return
        if self.rob.is_full():
            stats.rob_stall_cycles += rest
        elif self._iq_occupancy >= self.config.issue_queue_size:
            stats.iq_stall_cycles += rest
        else:
            kind = self._peek_kind(self._fetch_seq)
            if kind == KIND_LOAD and self.load_queue.is_full():
                stats.lq_stall_cycles += rest
            elif kind == KIND_STORE and self.store_queue.is_full():
                stats.sq_stall_cycles += rest

    # ------------------------------------------------------------ completions --

    def _process_completions(self) -> None:
        ops = self._completions.pop(self._cycle, None)
        if not ops:
            return
        for record in ops:
            if record.squashed:
                continue
            record.completed = True
            if record.kind == KIND_STORE:
                self.store_queue.write_execute(record.ssn, record.addr,
                                               record.size, record.value)
                waiters = record.fwd_waiters
                if waiters:
                    for waiter in waiters:
                        self._clear_fwd_wait(waiter)
                    record.fwd_waiters = None
            # Only a mispredicted branch can be the record fetch is blocked on.
            if self._fetch_blocked_on is record:
                self._fetch_blocked_on = None
                self._fetch_resume_cycle = max(self._fetch_resume_cycle,
                                               self._cycle + self.config.branch_redirect_penalty)
            consumers = record.consumers
            if consumers:
                cycle = self._cycle
                for consumer in consumers:
                    if consumer.squashed:
                        continue
                    wait_srcs = consumer.wait_srcs = consumer.wait_srcs - 1
                    # Inlined _maybe_ready (consumer is never issued before
                    # its last source broadcasts, but guard anyway — a
                    # squash-then-refetch can leave stale consumer links).
                    if (wait_srcs == 0 and not consumer.wait_fwd
                            and not consumer.issued
                            and not consumer.ready_pushed):
                        if consumer.other_ready_cycle < 0:
                            consumer.other_ready_cycle = cycle
                        if not consumer.wait_dly:
                            consumer.ready_pushed = True
                            self._ready_count += 1
                            self._ready_tiebreak += 1
                            heapq.heappush(
                                self._ready[consumer.issue_class],
                                (consumer.seq, self._ready_tiebreak, consumer))
                record.consumers = None

    def _clear_fwd_wait(self, record: _Inflight) -> None:
        if record.squashed or not record.wait_fwd:
            return
        record.wait_fwd = False
        self._maybe_ready(record)

    def _maybe_ready(self, record: _Inflight) -> None:
        if record.squashed or record.issued or record.ready_pushed:
            return
        if record.wait_srcs == 0 and not record.wait_fwd:
            if record.other_ready_cycle < 0:
                record.other_ready_cycle = self._cycle
            if not record.wait_dly:
                record.ready_pushed = True
                self._ready_count += 1
                self._ready_tiebreak += 1
                heapq.heappush(self._ready[record.issue_class],
                               (record.seq, self._ready_tiebreak, record))

    # ----------------------------------------------------------------- commit --

    def _commit_stage(self) -> int:
        """Commit up to ``commit_width`` completed instructions in order.

        The per-kind commit bodies (store: memory/SQ/SSN/SVW updates and
        delay-waiter wakeups; load: LQ release, value re-execution, SVW
        filter, predictor training, violation flush) are inlined here with
        their structures hoisted — this loop runs once per committed
        instruction and the call/attribute overhead would otherwise rival
        the modelled work.  Policy hooks with subclass overrides still go
        through the methods (see ``_fast_reexec`` / ``_fast_store_commit``).
        """
        committed = 0
        delay = self.config.backend_commit_delay
        cycle = self._cycle
        stats = self.stats
        records = self._records
        policy = self.policy
        memory = self.memory
        ssn_alloc = self.ssn_alloc
        lq = self.load_queue
        lq_entries = lq._entries
        lq_by_seq = lq._by_seq
        # ROB head/pop and RAT retire are inlined as well.
        rob_entries = self.rob._entries
        rat_map = self.rat._map
        while committed < self.config.commit_width:
            if not rob_entries:
                break
            record = rob_entries[0]
            if not record.completed or record.completion_cycle + delay > cycle:
                break
            rob_entries.popleft()
            committed += 1
            stats.committed += 1
            seq = record.seq
            records[seq] = None
            dest = record.dest
            if dest is not None and dest != REG_ZERO and rat_map[dest] == seq:
                rat_map[dest] = ARCH_READY

            kind = record.kind
            if kind == KIND_STORE:
                addr = record.addr
                size = record.size
                ssn = record.ssn
                stats.committed_stores += 1
                memory.write(addr, size, record.value)
                # Inlined SSNAllocator.commit (stores commit in SSN order).
                if ssn != ssn_alloc.ssn_commit + 1:
                    raise ValueError(
                        f"stores must commit in SSN order: expected "
                        f"{ssn_alloc.ssn_commit + 1}, got {ssn}")
                ssn_alloc.ssn_commit = ssn
                self.store_queue.release(ssn)
                self._store_by_ssn.pop(ssn, None)
                if self._fast_store_commit:
                    # Inlined base-class SVW update (policies that only
                    # maintain the SSBF/SPCT at store commit).
                    svw = policy.svw
                    svw.ssbf.update(addr, size, ssn)
                    svw.spct.update(addr, size, record.pc)
                    svw_stats = svw.stats
                    svw_stats.ssbf_writes += 1
                    svw_stats.spct_writes += 1
                else:
                    policy.store_committed(record.pc, ssn, addr, size)
                self.hierarchy.store_touch(addr)
                waiters = self._dly_waiters.pop(ssn, None)
                if waiters:
                    for waiter in waiters:
                        if waiter.squashed or not waiter.wait_dly:
                            continue
                        waiter.wait_dly = False
                        waiter.dly_clear_cycle = cycle
                        self._maybe_ready(waiter)
            elif kind == KIND_LOAD:
                addr = record.addr
                size = record.size
                stats.committed_loads += 1
                # Inlined LoadQueue.release (loads commit strictly in order).
                if not lq_entries:
                    raise RuntimeError("release from an empty load queue")
                if lq_entries[0].seq != seq:
                    raise ValueError(f"loads must commit in order: head seq "
                                     f"{lq_entries[0].seq}, got {seq}")
                lq_entries.popleft()
                del lq_by_seq[seq]
                lq.stats.releases += 1

                correct_value = memory.read(addr, size)
                if self._fast_reexec:
                    # Inlined base-class SVW filter check (every built-in
                    # policy; overrides go through the method).
                    svw = policy.svw
                    svw.stats.loads_checked += 1
                    needs_reexec = svw.ssbf.lookup(addr, size) > record.svw_ssn
                    if needs_reexec:
                        svw.stats.loads_reexecuted += 1
                else:
                    needs_reexec = policy.needs_reexecution(addr, size,
                                                           record.svw_ssn)
                if needs_reexec:
                    stats.loads_reexecuted += 1
                violation = record.spec_value != correct_value
                if violation and not needs_reexec:
                    raise AssertionError(
                        f"SVW filter missed a violation at pc={record.pc:#x} "
                        f"seq={seq}: spec={record.spec_value:#x} "
                        f"correct={correct_value:#x}")

                if record.should_forward:
                    stats.loads_should_forward += 1
                if record.forwarded:
                    stats.loads_forwarded += 1
                if record.delay_cycles > 0:
                    stats.loads_delayed += 1
                    stats.total_delay_cycles += record.delay_cycles

                # Inlined LoadCommitInfo construction (no ctor frame).
                info = LoadCommitInfo.__new__(LoadCommitInfo)
                info.pc = record.pc
                info.addr = addr
                info.size = size
                info.spec_value = record.spec_value
                info.correct_value = correct_value
                info.forwarded = record.forwarded
                info.forward_ssn = record.forward_ssn
                info.prediction = record.prediction or LoadPrediction()
                info.ssn_at_rename = record.ssn_at_rename
                info.ssn_cmt = ssn_alloc.ssn_commit
                info.violation = violation
                policy.load_committed(info)

                if violation:
                    stats.ordering_violations += 1
                    if record.should_forward:
                        stats.mis_forwardings += 1
                    self._flush_after(record)
                    break
            elif kind == KIND_BRANCH:
                stats.committed_branches += 1
        return committed

    # ------------------------------------------------------------------ flush --

    def _flush_after(self, record: _Inflight) -> None:
        """Squash everything younger than ``record`` and redirect fetch."""
        self.stats.flushes += 1
        squashed = self.rob.squash_younger_than(record.seq)
        for victim in squashed:
            victim.squashed = True
            self.stats.squashed_uops += 1
            self._records[victim.seq] = None
            self.rat.undo(victim.rat_undo)
            if not victim.issued:
                self._iq_occupancy -= 1
            kind = victim.kind
            if kind == KIND_STORE:
                self.policy.store_squashed(victim.pc, victim.ssn, victim.sat_undo)
                self._store_by_ssn.pop(victim.ssn, None)
                self._undo_last_writer(victim)
            elif kind == KIND_LOAD and victim.prediction is not None \
                    and victim.prediction.dly_ssn:
                waiters = self._dly_waiters.get(victim.prediction.dly_ssn)
                if waiters and victim in waiters:
                    waiters.remove(victim)

        # Squash SQ/LQ entries younger than the flush point.
        self.store_queue.squash_younger(record.ssn_at_rename)
        self.load_queue.squash_younger(record.seq)
        self.ssn_alloc.rewind_rename(max(record.ssn_at_rename, self.ssn_alloc.ssn_commit))

        # Redirect fetch.
        self._fetch_seq = record.seq + 1
        self._fetch_resume_cycle = self._cycle + self.config.flush_penalty
        if self._fetch_blocked_on is not None and self._fetch_blocked_on.squashed:
            self._fetch_blocked_on = None

    def _undo_last_writer(self, store_record: _Inflight) -> None:
        undo = store_record.oracle_undo
        if undo is None:
            return
        last_writer = self._last_writer
        seq = store_record.seq
        for byte_addr, previous in zip(
                range(store_record.addr, store_record.addr + store_record.size),
                undo):
            current = last_writer.get(byte_addr)
            if current is not None and current[0] == seq:
                if previous is None:
                    del last_writer[byte_addr]
                else:
                    last_writer[byte_addr] = previous

    # ------------------------------------------------------------------ issue --

    def _issue_stage(self) -> None:
        """Issue the oldest ready micro-ops, respecting per-class bandwidth.

        Selection order matches the single-heap formulation (globally oldest
        first among classes with remaining budget); entries whose class budget
        is exhausted simply stay in their heap instead of being popped and
        re-pushed every cycle.
        """
        if not self._ready_count:
            return
        heaps = self._heap_list
        execute_load = self._execute_load
        limits = self.config.issue_limits
        # Budgets and head-candidates as positional lists in
        # _ISSUE_CLASS_KEYS order; after a pop only the popped class's head
        # can change, so the other classes are not rescanned (tournament
        # selection, same oldest-first order as a full rescan).
        budgets = [limits.int_ops, limits.fp_ops, limits.branches,
                   limits.loads, limits.stores]
        total_budget = self.config.issue_width
        heappop = heapq.heappop
        heads: List[Optional[int]] = [None, None, None, None, None]
        for i in range(5):
            if budgets[i] > 0:
                heap = heaps[i]
                while heap:
                    record = heap[0][2]
                    if record.squashed or record.issued:
                        heappop(heap)
                        self._ready_count -= 1
                    else:
                        break
                if heap:
                    heads[i] = heap[0][0]
        mlp_hier = self._mlp_hier
        while total_budget > 0:
            best_i = -1
            best_seq = None
            for i in range(5):
                seq = heads[i]
                if seq is not None and (best_seq is None or seq < best_seq):
                    best_seq = seq
                    best_i = i
            if best_i < 0:
                break
            heap = heaps[best_i]
            if best_i == 3 and mlp_hier is not None \
                    and mlp_hier.load_would_block(heap[0][2].addr, self._cycle):
                # Structural stall: the MSHR file is full and the oldest
                # ready load needs a new fill.  Loads issue oldest-first,
                # so the whole class is held for this cycle; the entry
                # stays in its heap and retries once a fill retires an
                # entry (load_would_block retires due fills itself, so the
                # un-block lands on exactly the fill cycle).
                heads[3] = None
                self.stats.mshr_stall_cycles += 1
                continue
            _, _, record = heappop(heap)
            self._ready_count -= 1
            budgets[best_i] -= 1
            total_budget -= 1
            if budgets[best_i] > 0:
                while heap:
                    head = heap[0][2]
                    if head.squashed or head.issued:
                        heappop(heap)
                        self._ready_count -= 1
                    else:
                        break
                heads[best_i] = heap[0][0] if heap else None
            else:
                heads[best_i] = None
            # Inlined execute.
            record.issued = True
            self._iq_occupancy -= 1
            if record.kind == KIND_LOAD:
                latency = execute_load(record)
                # Delay accounting: the DDP delayed this load for the
                # interval between the cycle it was otherwise ready and the
                # cycle its delay cleared.
                dly_clear = record.dly_clear_cycle
                if dly_clear >= 0 and record.other_ready_cycle >= 0:
                    delay = dly_clear - record.other_ready_cycle
                    if delay > 0:
                        record.delay_cycles = delay
            else:
                latency = record.latency
            completion_cycle = self._cycle + latency
            record.completion_cycle = completion_cycle
            completions = self._completions
            bucket = completions.get(completion_cycle)
            if bucket is None:
                completions[completion_cycle] = [record]
            else:
                bucket.append(record)

    def _execute_load(self, record: _Inflight) -> int:
        addr = record.addr
        size = record.size
        prediction = record.prediction or LoadPrediction()
        l1_latency = self.hierarchy.l1_latency

        record.should_forward = record.oracle_dep_ssn > self.ssn_alloc.ssn_commit

        decision = self.policy.forward(addr, size, record.ssn_at_rename,
                                       prediction, self.store_queue)
        mlp_hier = self._mlp_hier
        if mlp_hier is not None:
            # Non-blocking hierarchy: the returned latency is derived from
            # the MSHR fill cycle (primary misses allocate, secondary
            # misses coalesce), so dependants wake on the fill event.
            cache_latency = mlp_hier.load_access(addr, self._cycle, record.pc)
        else:
            cache_latency = self.hierarchy.load_latency(addr)

        if decision.forwarded:
            record.forwarded = True
            record.forward_ssn = decision.forward_ssn
            record.spec_value = decision.value if decision.value is not None else 0
            record.svw_ssn = decision.forward_ssn
            actual = self.policy.forwarded_load_latency(l1_latency)
        else:
            record.spec_value = self.memory.read(addr, size)
            record.svw_ssn = self.ssn_alloc.ssn_commit
            actual = cache_latency

        # Inlined LoadQueue.record_execution.
        lq_entry = self.load_queue._by_seq[record.seq]
        lq_entry.addr = addr
        lq_entry.size = size
        lq_entry.value = record.spec_value
        lq_entry.svw_ssn = record.svw_ssn
        lq_entry.forwarded = record.forwarded

        assumed = self.policy.assumed_load_latency(prediction, l1_latency)
        if actual > assumed:
            self.stats.replays += 1
            actual += self.config.replay_penalty
        return actual

    # --------------------------------------------------------------- dispatch --
    #
    # Two implementations of the same stage, bound per run: the encoded path
    # walks the static plane's precomputed dispatch metadata (kind code,
    # issue class, latency, register tuples) through flat list indexing; the
    # object path probes :class:`MicroOp` attributes exactly as the
    # pre-two-plane core did.  Both populate identical in-flight records and
    # are bit-identical (equivalence- and golden-tested).

    def _make_dispatch_enc(self):
        """Build the encoded dispatch stage as a per-run closure.

        Everything loop-invariant for the whole run — the static plane's
        dispatch metadata arrays, the dynamic-plane arrays, configuration
        scalars, and the (stable) hot structure internals — is captured once
        here instead of being re-hoisted from ``self`` on every cycle.
        Per-cycle mutable state (``_cycle``, ``_fetch_seq``,
        ``_iq_occupancy``, ``stats``, …) stays on ``self`` because other
        stages mutate it between calls.
        """
        encoded = self._encoded
        plane = encoded.plane
        (kind_arr, pc_arr, dest_arr, srcs_arr, _issue_index_arr, latency_arr,
         hint_call_arr, hint_return_arr) = plane.dispatch_arrays()
        issue_arr = plane.issue_class
        (sidx, addr_arr, size_arr, value_arr, taken_arr,
         target_arr) = encoded.dynamic_arrays()
        total = self._total
        config = self.config
        rename_width = config.rename_width
        taken_per_cycle = config.taken_branches_per_cycle
        iq_size = config.issue_queue_size
        rob = self.rob
        rob_entries = rob._entries
        rob_size = rob.size
        lq_entries = self.load_queue._entries
        lq_size = self.load_queue.size
        sq_entries = self.store_queue._entries
        sq_size = self.store_queue.size
        records = self._records
        rat_map = self.rat._map
        ready_heaps = self._ready
        heappush = heapq.heappush
        branch_resolve = self.branch_unit.predict_and_resolve
        inflight = _Inflight
        inflight_new = _Inflight.__new__
        reg_zero = REG_ZERO
        arch_ready = ARCH_READY
        # Load/store dispatch bodies are inlined below; these are their
        # loop-invariant captures (all bound after import_state, so warmed
        # state is what gets captured).
        ssn_alloc = self.ssn_alloc
        ssn_allocate = ssn_alloc.allocate
        policy = self.policy
        policy_store_renamed = policy.store_renamed
        policy_store_dependence = policy.store_dependence
        policy_predict_load = policy.predict_load
        store_by_ssn = self._store_by_ssn
        dly_waiters = self._dly_waiters
        last_writer = self._last_writer
        last_writer_get = last_writer.get
        lq = self.load_queue
        lq_by_seq = lq._by_seq
        lq_stats = lq.stats
        lq_entry_new = LoadQueueEntry.__new__
        lq_entry_cls = LoadQueueEntry
        sq = self.store_queue
        sq_slots = sq._slots
        sq_stats = sq.stats
        sq_entry_new = StoreQueueEntry.__new__
        sq_entry_cls = StoreQueueEntry
        sq_size_mask = sq.size - 1
        model_ssn_wrap = config.model_ssn_wrap
        ssn_wrapped = ssn_alloc.wrapped
        ssn_wrap_drain_penalty = config.ssn_wrap_drain_penalty

        def dispatch() -> None:
            # Caller contract (the run loop): fetch is not redirect-blocked
            # and the trace is not exhausted — the stall accounting lives in
            # exactly one place, the run loop.
            stats = self.stats
            cycle = self._cycle
            seq = self._fetch_seq
            iq_occ = self._iq_occupancy
            tiebreak = self._ready_tiebreak
            dispatched = 0
            taken_budget = taken_per_cycle

            while True:
                si = sidx[seq]
                kind = kind_arr[si]

                if len(rob_entries) >= rob_size:
                    stats.rob_stall_cycles += 1
                    break
                if iq_occ >= iq_size:
                    stats.iq_stall_cycles += 1
                    break
                if kind == KIND_LOAD:
                    if len(lq_entries) >= lq_size:
                        stats.lq_stall_cycles += 1
                        break
                elif kind == KIND_STORE:
                    if len(sq_entries) >= sq_size:
                        stats.sq_stall_cycles += 1
                        break

                # Inlined _Inflight construction (no call frame per uop).
                dest = dest_arr[si]
                record = inflight_new(inflight)
                record.seq = rseq = seq
                record.kind = kind
                record.pc = pc_arr[si]
                record.dest = dest
                record.issue_class = issue_arr[si]
                record.latency = latency_arr[si]
                record.squashed = False
                record.wait_srcs = 0
                record.wait_fwd = False
                record.wait_dly = False
                record.issued = False
                record.completed = False
                record.consumers = None
                record.ready_pushed = False
                record.other_ready_cycle = -1
                record.completion_cycle = -1
                record.rat_undo = None
                seq += 1
                self._fetch_seq = seq
                dispatched += 1

                records[rseq] = record
                # Inlined ReorderBuffer.push (capacity was checked above).
                rob_entries.append(record)
                rob.allocations += 1
                occupancy = len(rob_entries)
                if occupancy > rob.max_occupancy:
                    rob.max_occupancy = occupancy
                iq_occ += 1

                # Register dependences.  The RAT map is indexed directly:
                # the registers were validated once, at static-plane intern.
                for src in srcs_arr[si]:
                    if src == reg_zero:
                        continue
                    producer_seq = rat_map[src]
                    if producer_seq == arch_ready:
                        continue
                    producer = records[producer_seq]
                    if producer is None or producer.completed or producer.squashed:
                        continue
                    record.wait_srcs += 1
                    consumers = producer.consumers
                    if consumers is None:
                        producer.consumers = [record]
                    else:
                        consumers.append(record)

                # Inlined RegisterAliasTable.rename_dest.
                if dest is not None and dest != reg_zero:
                    record.rat_undo = (dest, rat_map[dest])
                    rat_map[dest] = rseq

                if kind == KIND_LOAD:
                    # Inlined _dispatch_load (plus the load-field defaults
                    # that are not immediately overwritten below).
                    record.spec_value = 0
                    record.forwarded = False
                    record.forward_ssn = 0
                    record.svw_ssn = 0
                    record.should_forward = False
                    record.delay_cycles = 0
                    record.dly_clear_cycle = -1
                    record.addr = addr = addr_arr[rseq]
                    record.size = size = size_arr[rseq]
                    ssn_ren = ssn_alloc.ssn_rename
                    ssn_cmt = ssn_alloc.ssn_commit
                    record.ssn_at_rename = ssn_ren
                    # Inlined LoadQueue.allocate (capacity checked above;
                    # dispatch order is program order by construction).
                    lq_entry = lq_entry_new(lq_entry_cls)
                    lq_entry.seq = rseq
                    lq_entry.pc = record.pc
                    lq_entry.addr = None
                    lq_entry.size = 0
                    lq_entry.value = None
                    lq_entry.svw_ssn = 0
                    lq_entry.forwarded = False
                    lq_entries.append(lq_entry)
                    lq_by_seq[rseq] = lq_entry
                    lq_stats.allocations += 1

                    # Oracle dependence: youngest older dispatched store
                    # writing any byte.
                    oracle_ssn = 0
                    for byte_addr in range(addr, addr + size):
                        entry = last_writer_get(byte_addr)
                        if entry is not None and entry[1] > oracle_ssn:
                            oracle_ssn = entry[1]
                    record.oracle_dep_ssn = oracle_ssn

                    record.prediction = prediction = policy_predict_load(
                        record.pc, ssn_ren, ssn_cmt, oracle_ssn)

                    # Scheduling constraint 1: the predicted forwarding
                    # store must have executed.
                    fwd_ssn = prediction.fwd_ssn
                    if fwd_ssn and fwd_ssn > ssn_cmt:
                        store = store_by_ssn.get(fwd_ssn)
                        if store is not None and not store.completed \
                                and not store.squashed:
                            record.wait_fwd = True
                            if store.fwd_waiters is None:
                                store.fwd_waiters = [record]
                            else:
                                store.fwd_waiters.append(record)
                            stats.loads_waited_on_prediction += 1

                    # Scheduling constraint 2: the delay-index store must
                    # have committed.
                    dly_ssn = prediction.dly_ssn
                    if dly_ssn and dly_ssn > ssn_cmt:
                        record.wait_dly = True
                        waiters = dly_waiters.get(dly_ssn)
                        if waiters is None:
                            dly_waiters[dly_ssn] = [record]
                        else:
                            waiters.append(record)
                elif kind == KIND_STORE:
                    # Inlined _dispatch_store (ssn/sat_undo/oracle_undo are
                    # unconditionally assigned below; only the waiter-list
                    # default is needed).
                    record.fwd_waiters = None
                    record.addr = addr = addr_arr[rseq]
                    record.size = size = size_arr[rseq]
                    record.value = value_arr[rseq]
                    record.ssn = ssn = ssn_allocate()
                    if model_ssn_wrap and ssn_wrapped(ssn):
                        stats.ssn_wraps += 1
                        resume = cycle + ssn_wrap_drain_penalty
                        if resume > self._fetch_resume_cycle:
                            self._fetch_resume_cycle = resume
                    # Inlined StoreQueue.allocate (capacity checked above;
                    # SSNs are allocated in increasing order by construction).
                    sq_entry = sq_entry_new(sq_entry_cls)
                    sq_entry.ssn = ssn
                    sq_entry.pc = record.pc
                    sq_entry.seq = rseq
                    sq_entry.addr = None
                    sq_entry.size = 0
                    sq_entry.value = 0
                    sq_entry.executed = False
                    sq_entries.append(sq_entry)
                    sq_slots[ssn & sq_size_mask] = sq_entry
                    sq_stats.allocations += 1
                    store_by_ssn[ssn] = record
                    record.sat_undo = policy_store_renamed(record.pc, ssn)

                    # Oracle last-writer tracking; the undo log records the
                    # previous entry of each touched byte, positionally over
                    # range(addr, addr + size), for flush repair.
                    entry = (rseq, ssn)
                    undo = []
                    undo_append = undo.append
                    for byte_addr in range(addr, addr + size):
                        undo_append(last_writer_get(byte_addr))
                        last_writer[byte_addr] = entry
                    record.oracle_undo = undo

                    # Store-store serialisation (original Store Sets only).
                    dep_ssn = policy_store_dependence(record.pc, ssn)
                    if dep_ssn:
                        dep = store_by_ssn.get(dep_ssn)
                        if dep is not None and not dep.completed \
                                and not dep.squashed:
                            record.wait_fwd = True
                            if dep.fwd_waiters is None:
                                dep.fwd_waiters = [record]
                            else:
                                dep.fwd_waiters.append(record)
                elif kind == KIND_BRANCH:
                    taken = taken_arr[rseq]
                    target = target_arr[rseq]
                    record.mispredicted = mispredicted = branch_resolve(
                        record.pc, taken, target if target >= 0 else None,
                        hint_call_arr[si], hint_return_arr[si])
                    if mispredicted:
                        stats.branch_mispredictions += 1

                # Inlined _maybe_ready for a freshly dispatched record
                # (never squashed / issued / already pushed).
                if record.wait_srcs == 0 and not record.wait_fwd:
                    record.other_ready_cycle = cycle
                    if not record.wait_dly:
                        record.ready_pushed = True
                        self._ready_count += 1
                        tiebreak += 1
                        heappush(ready_heaps[record.issue_class],
                                 (rseq, tiebreak, record))

                if kind == KIND_BRANCH:
                    if mispredicted:
                        self._fetch_blocked_on = record
                        break
                    if taken:
                        taken_budget -= 1
                        if taken_budget <= 0:
                            break
                if dispatched >= rename_width or seq >= total:
                    break

            self._iq_occupancy = iq_occ
            self._ready_tiebreak = tiebreak

        return dispatch

    def _dispatch_stage_obj(self) -> None:
        """Back-compat object path: per-uop attribute probing on MicroOps.

        Caller contract as for the encoded closure: the run loop has already
        established that fetch is not redirect-blocked and that the trace is
        not exhausted (stall accounting lives only there).
        """
        stats = self.stats
        trace = self._uops
        total = self._total
        taken_budget = self.config.taken_branches_per_cycle
        dispatched = 0

        while dispatched < self.config.rename_width and self._fetch_seq < total:
            uop = trace[self._fetch_seq]

            if self.rob.is_full():
                stats.rob_stall_cycles += 1
                return
            if self._iq_occupancy >= self.config.issue_queue_size:
                stats.iq_stall_cycles += 1
                return
            if uop.is_load and self.load_queue.is_full():
                stats.lq_stall_cycles += 1
                return
            if uop.is_store and self.store_queue.is_full():
                stats.sq_stall_cycles += 1
                return

            if uop.is_load:
                kind = KIND_LOAD
            elif uop.is_store:
                kind = KIND_STORE
            elif uop.is_branch:
                kind = KIND_BRANCH
            else:
                kind = KIND_OTHER
            record = _Inflight(self._fetch_seq, kind, uop.pc, uop.dest,
                               _ISSUE_CLASS[uop.op_class],
                               DEFAULT_LATENCIES[uop.op_class])
            seq = record.seq
            self._fetch_seq = seq + 1
            dispatched += 1

            records = self._records
            records[seq] = record
            self.rob.push(record)
            self._iq_occupancy += 1

            for src in uop.srcs:
                producer_seq = self.rat.producer_of(src)
                if producer_seq == ARCH_READY:
                    continue
                producer = records[producer_seq]
                if producer is None or producer.completed or producer.squashed:
                    continue
                record.wait_srcs += 1
                consumers = producer.consumers
                if consumers is None:
                    producer.consumers = [record]
                else:
                    consumers.append(record)

            record.rat_undo = self.rat.rename_dest(uop.dest, seq)

            if kind == KIND_BRANCH:
                record.mispredicted = self.branch_unit.predict_and_resolve(
                    uop.pc, uop.is_taken, uop.target, uop.hint_call, uop.hint_return)
                if record.mispredicted:
                    stats.branch_mispredictions += 1
            elif kind == KIND_STORE:
                record.init_store()
                mem = uop.mem
                record.addr = mem.addr
                record.size = mem.size
                record.value = mem.value
                self._dispatch_store(record)
            elif kind == KIND_LOAD:
                record.init_load()
                mem = uop.mem
                record.addr = mem.addr
                record.size = mem.size
                self._dispatch_load(record)

            self._maybe_ready(record)

            if kind == KIND_BRANCH:
                if record.mispredicted:
                    self._fetch_blocked_on = record
                    return
                if uop.is_taken:
                    taken_budget -= 1
                    if taken_budget <= 0:
                        return

    def _dispatch_store(self, record: _Inflight) -> None:
        ssn = self.ssn_alloc.allocate()
        record.ssn = ssn
        if self.config.model_ssn_wrap and self.ssn_alloc.wrapped(ssn):
            self.stats.ssn_wraps += 1
            self._fetch_resume_cycle = max(self._fetch_resume_cycle,
                                           self._cycle + self.config.ssn_wrap_drain_penalty)
        self.store_queue.allocate(ssn, record.pc, record.seq)
        self._store_by_ssn[ssn] = record
        record.sat_undo = self.policy.store_renamed(record.pc, ssn)

        # Oracle last-writer tracking; the undo log records the previous
        # entry of each touched byte, positionally over the access's byte
        # range, for flush repair.
        last_writer = self._last_writer
        entry = (record.seq, ssn)
        undo: List[Optional[Tuple[int, int]]] = []
        for byte_addr in range(record.addr, record.addr + record.size):
            undo.append(last_writer.get(byte_addr))
            last_writer[byte_addr] = entry
        record.oracle_undo = undo

        # Store-store serialisation (original Store Sets only).
        dep_ssn = self.policy.store_dependence(record.pc, ssn)
        if dep_ssn:
            dep = self._store_by_ssn.get(dep_ssn)
            if dep is not None and not dep.completed and not dep.squashed:
                record.wait_fwd = True
                if dep.fwd_waiters is None:
                    dep.fwd_waiters = [record]
                else:
                    dep.fwd_waiters.append(record)

    def _dispatch_load(self, record: _Inflight) -> None:
        ssn_alloc = self.ssn_alloc
        record.ssn_at_rename = ssn_alloc.ssn_rename
        self.load_queue.allocate(record.seq, record.pc)

        # Oracle dependence: youngest older dispatched store writing any byte.
        last_writer = self._last_writer
        oracle_ssn = 0
        for byte_addr in range(record.addr, record.addr + record.size):
            entry = last_writer.get(byte_addr)
            if entry is not None and entry[1] > oracle_ssn:
                oracle_ssn = entry[1]
        record.oracle_dep_ssn = oracle_ssn

        prediction = self.policy.predict_load(record.pc, ssn_alloc.ssn_rename,
                                              ssn_alloc.ssn_commit, oracle_ssn)
        record.prediction = prediction

        # Scheduling constraint 1: predicted forwarding store must have executed.
        if prediction.fwd_ssn and prediction.fwd_ssn > ssn_alloc.ssn_commit:
            store = self._store_by_ssn.get(prediction.fwd_ssn)
            if store is not None and not store.completed and not store.squashed:
                record.wait_fwd = True
                if store.fwd_waiters is None:
                    store.fwd_waiters = [record]
                else:
                    store.fwd_waiters.append(record)
                self.stats.loads_waited_on_prediction += 1

        # Scheduling constraint 2: the delay-index store must have committed.
        if prediction.dly_ssn and prediction.dly_ssn > ssn_alloc.ssn_commit:
            record.wait_dly = True
            self._dly_waiters.setdefault(prediction.dly_ssn, []).append(record)

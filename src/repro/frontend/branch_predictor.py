"""Branch direction predictors.

Implements two-bit saturating counters, a bimodal table, a gshare table, and
the hybrid (chooser-based) combination used by the paper's baseline
processor.  The pipeline queries the predictor at fetch and updates it at
branch resolution; a misprediction redirects the front end after the branch
executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class SaturatingCounter:
    """An n-bit saturating counter.

    Counters start at the weakly-taken / weakly-not-taken boundary so the
    predictor warms quickly in either direction.
    """

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits < 1:
            raise ValueError("counter must have at least one bit")
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self.value = self.threshold if initial is None else initial
        if not 0 <= self.value <= self.max_value:
            raise ValueError("initial counter value out of range")

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def update(self, taken: bool) -> None:
        if taken:
            self.increment()
        else:
            self.decrement()

    @property
    def predict_taken(self) -> bool:
        return self.value >= self.threshold

    @property
    def is_saturated(self) -> bool:
        return self.value in (0, self.max_value)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Sizes of the hybrid predictor components (paper defaults)."""

    bimodal_entries: int = 4096
    gshare_entries: int = 4096
    chooser_entries: int = 4096
    history_bits: int = 12
    counter_bits: int = 2

    def __post_init__(self) -> None:
        for n in (self.bimodal_entries, self.gshare_entries, self.chooser_entries):
            if n <= 0 or n & (n - 1):
                raise ValueError("predictor table sizes must be powers of two")
        if not 1 <= self.history_bits <= 32:
            raise ValueError("history bits must be between 1 and 32")


class _CounterTable:
    """A table of two-bit counters stored as plain integers for speed."""

    def __init__(self, entries: int, bits: int) -> None:
        self._mask = entries - 1
        self._max = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        self._table: List[int] = [self._threshold] * entries

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= self._threshold

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        v = self._table[i]
        if taken:
            if v < self._max:
                self._table[i] = v + 1
        elif v > 0:
            self._table[i] = v - 1

    def state_signature(self) -> tuple:
        """Hashable snapshot of the counter values."""
        return tuple(self._table)


class BimodalPredictor:
    """PC-indexed table of saturating counters."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        self._table = _CounterTable(entries, counter_bits)

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc >> 2)

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(pc >> 2, taken)

    def state_signature(self) -> tuple:
        return self._table.state_signature()


class GSharePredictor:
    """Global-history-XOR-PC indexed table of saturating counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12, counter_bits: int = 2) -> None:
        self._table = _CounterTable(entries, counter_bits)
        self._history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self.history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | int(taken)) & self._history_mask

    def state_signature(self) -> tuple:
        return (self._table.state_signature(), self.history)


class HybridPredictor:
    """gshare/bimodal hybrid with a PC-indexed chooser.

    The chooser counter selects between the component predictions; it is
    trained toward whichever component was correct when they disagree.
    """

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.bimodal = BimodalPredictor(self.config.bimodal_entries, self.config.counter_bits)
        self.gshare = GSharePredictor(self.config.gshare_entries, self.config.history_bits,
                                      self.config.counter_bits)
        self._chooser = _CounterTable(self.config.chooser_entries, self.config.counter_bits)

    def predict(self, pc: int) -> bool:
        use_gshare = self._chooser.predict(pc >> 2)
        return self.gshare.predict(pc) if use_gshare else self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_pred = self.bimodal.predict(pc)
        gshare_pred = self.gshare.predict(pc)
        if bimodal_pred != gshare_pred:
            # Train the chooser toward the component that was right.
            self._chooser.update(pc >> 2, gshare_pred == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def resolve(self, pc: int, taken: bool) -> bool:
        """Fused :meth:`predict` + :meth:`update` for the resolve-immediately
        pipeline: the component predictions are computed once and reused for
        both the hybrid choice and the chooser training (bit-identical to
        the split calls, which recompute them from unchanged state)."""
        word = pc >> 2
        bimodal_table = self.bimodal._table
        gshare = self.gshare
        gshare_index = word ^ gshare.history
        gshare_table = gshare._table
        bimodal_pred = bimodal_table.predict(word)
        gshare_pred = gshare_table.predict(gshare_index)
        if bimodal_pred == gshare_pred:
            predicted = bimodal_pred
        else:
            predicted = gshare_pred if self._chooser.predict(word) else bimodal_pred
            # Train the chooser toward the component that was right.
            self._chooser.update(word, gshare_pred == taken)
        bimodal_table.update(word, taken)
        gshare_table.update(gshare_index, taken)
        gshare.history = ((gshare.history << 1) | (1 if taken else 0)) \
            & gshare._history_mask
        return predicted

    def state_signature(self) -> tuple:
        """Hashable snapshot of all three component tables."""
        return (self.bimodal.state_signature(),
                self.gshare.state_signature(),
                self._chooser.state_signature())


class BranchUnit:
    """Front-end branch handling façade.

    Combines the hybrid direction predictor, BTB, and RAS into a single
    ``predict``/``resolve`` interface.  The pipeline treats a branch as
    mispredicted when either the predicted direction is wrong or a taken
    branch misses in the BTB (no target available at fetch).
    """

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        # Imported here to avoid a circular import at package load time.
        from repro.frontend.btb import BranchTargetBuffer
        from repro.frontend.ras import ReturnAddressStack

        self.direction = HybridPredictor(config)
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        self.predictions = 0
        self.mispredictions = 0
        self.btb_misses = 0

    def predict_and_resolve(self, pc: int, taken: bool, target: int | None,
                            is_call: bool = False, is_return: bool = False) -> bool:
        """Predict a branch and immediately resolve it against the trace.

        Returns True when the branch was *mispredicted* (direction wrong, or
        taken with no BTB/RAS-supplied target).  The structures are updated
        with the actual outcome, so a subsequent instance of the same branch
        sees trained state.
        """
        self.predictions += 1
        mispredicted = False

        # The direction predictor is consulted and trained in one fused pass
        # (prediction from pre-update state, exactly as the split calls did).
        predicted_taken = self.direction.resolve(pc, taken)

        if is_return:
            predicted_target = self.ras.pop()
            if not taken:
                mispredicted = predicted_taken
            else:
                mispredicted = predicted_target != target
        else:
            if predicted_taken != taken:
                mispredicted = True
            elif taken:
                predicted_target = self.btb.lookup(pc)
                if predicted_target is None or (target is not None and predicted_target != target):
                    self.btb_misses += 1
                    mispredicted = True

        if taken and target is not None:
            self.btb.insert(pc, target)
        if is_call:
            self.ras.push(pc + 4)

        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def reset_stats(self) -> None:
        """Reset the activity counters, keeping all predictive state warm.

        Used when functionally warmed state is imported into a detailed
        core so per-interval reports cover only their own predictions.
        """
        self.predictions = 0
        self.mispredictions = 0
        self.btb_misses = 0

    def direction_state_signature(self) -> tuple:
        """Hashable snapshot of the direction-predictor tables (tests use
        this to compare functionally warmed state against detailed state)."""
        return self.direction.state_signature()

    def state_signature(self) -> tuple:
        """Hashable snapshot of the whole front end (direction + BTB + RAS);
        used to assert checkpoint export/import round trips are exact."""
        return (self.direction.state_signature(),
                self.btb.state_signature(),
                self.ras.state_signature())

"""Front-end substrate: branch direction predictors, BTB, and RAS.

The paper's processor predicts branches with a 4K-entry hybrid
gshare/bimodal predictor, a 2K-entry 4-way BTB, and a 32-entry return address
stack (Section 4.1).  The front-end model here supplies those structures plus
a small façade (:class:`BranchUnit`) the pipeline uses to decide whether a
fetched branch redirects the front end.
"""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    BranchPredictorConfig,
    BranchUnit,
    GSharePredictor,
    HybridPredictor,
    SaturatingCounter,
)
from repro.frontend.btb import BranchTargetBuffer, BTBConfig
from repro.frontend.ras import ReturnAddressStack

__all__ = [
    "BimodalPredictor",
    "BranchPredictorConfig",
    "BranchTargetBuffer",
    "BranchUnit",
    "BTBConfig",
    "GSharePredictor",
    "HybridPredictor",
    "ReturnAddressStack",
    "SaturatingCounter",
]

"""The paper's primary contribution: store-queue index prediction.

This package contains the structures introduced or adapted by the paper:

* :mod:`repro.core.ssn` — Store Sequence Numbers (SSNs) and wrap handling.
* :mod:`repro.core.fsp` — the Forwarding Store Predictor (FSP), a PC-indexed
  set-associative table mapping load PCs to the store PCs they forward from.
* :mod:`repro.core.sat` — the Store Alias Table (SAT), mapping store PCs to
  the SSN of their youngest in-flight instance, with log/checkpoint repair.
* :mod:`repro.core.ddp` — the Delay Distance Predictor (DDP), which delays
  difficult loads until all but the predicted candidate store have committed.
* :mod:`repro.core.svw` — the Store Vulnerability Window support structures
  (SSBF and SPCT) used to filter load re-execution and train the predictors.
* :mod:`repro.core.store_sets` — the original Store Sets predictor
  (SSIT/LFST) used by the earliest baseline configuration in Table 1.
* :mod:`repro.core.predictors` — configuration dataclasses shared by the
  above.
"""

from repro.core.ssn import SSNAllocator, sq_index
from repro.core.predictors import FSPConfig, SATConfig, DDPConfig, SVWConfig, StoreSetsConfig, PredictorSuiteConfig
from repro.core.fsp import ForwardingStorePredictor, FSPEntry
from repro.core.sat import StoreAliasTable, SATUndoRecord
from repro.core.ddp import DelayDistancePredictor, DDPEntry
from repro.core.svw import StoreSequenceBloomFilter, StorePCTable, SVWFilter
from repro.core.store_sets import StoreSetsPredictor

__all__ = [
    "DDPConfig",
    "DDPEntry",
    "DelayDistancePredictor",
    "ForwardingStorePredictor",
    "FSPConfig",
    "FSPEntry",
    "PredictorSuiteConfig",
    "SATConfig",
    "SATUndoRecord",
    "SSNAllocator",
    "StoreAliasTable",
    "StorePCTable",
    "StoreSequenceBloomFilter",
    "StoreSetsConfig",
    "StoreSetsPredictor",
    "SVWConfig",
    "SVWFilter",
    "sq_index",
]

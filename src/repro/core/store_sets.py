"""Original Store Sets predictor (SSIT + LFST).

Chrysos & Emer's Store Sets predictor [3] is the inspiration for the paper's
FSP/SAT formulation and is the scheduler used by the first configuration in
Table 1 ("associative store queue with original Store Sets scheduling").  It
is included here both as that baseline and so that unit tests can contrast
its behaviour with the reformulated FSP/SAT scheme:

* The **Store Set ID Table (SSIT)** maps *both* load and store PCs to store
  set identifiers (SSIDs).  Loads and stores that have collided in the past
  are placed in the same set via the set-merging rules of the original paper
  (when a load and store collide, if neither has a set a new set is created;
  if one has a set the other joins it; if both have sets the sets are merged
  by convention toward the smaller SSID).
* The **Last Fetched Store Table (LFST)** maps each SSID to the instruction
  number (here: the SSN) of the most recently fetched/renamed store in that
  set.  A load with a valid SSID must wait for the store named by the LFST;
  a store with a valid SSID also waits for the previous store in its set
  (store-store ordering), which serialises the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.predictors import StoreSetsConfig


@dataclass(slots=True)
class StoreSetsStats:
    """Store Sets activity counters."""

    load_lookups: int = 0
    store_lookups: int = 0
    assignments: int = 0
    merges: int = 0
    lfst_updates: int = 0


_INVALID_SSID = -1


class StoreSetsPredictor:
    """Original Store Sets (SSIT/LFST) memory dependence predictor."""

    def __init__(self, config: Optional[StoreSetsConfig] = None) -> None:
        self.config = config or StoreSetsConfig()
        self.stats = StoreSetsStats()
        self._ssit: List[int] = [_INVALID_SSID] * self.config.ssit_entries
        self._lfst: List[int] = [0] * self.config.lfst_entries
        self._ssit_mask = self.config.ssit_entries - 1
        self._lfst_mask = self.config.lfst_entries - 1
        self._next_ssid = 0

    # -- indexing ---------------------------------------------------------------

    def _ssit_index(self, pc: int) -> int:
        return (pc >> 2) & self._ssit_mask

    def ssid_of(self, pc: int) -> int:
        """The SSID currently assigned to this PC (``-1`` if none)."""
        return self._ssit[self._ssit_index(pc)]

    # -- front-end operations ---------------------------------------------------

    def load_renamed(self, load_pc: int) -> Optional[int]:
        """Return the SSN of the store this load must wait for (or ``None``).

        Mirrors ``ld.INUM = LFST[SSIT[ld.PC]]`` from Table 1.
        """
        self.stats.load_lookups += 1
        ssid = self.ssid_of(load_pc)
        if ssid == _INVALID_SSID:
            return None
        ssn = self._lfst[ssid & self._lfst_mask]
        return ssn if ssn > 0 else None

    def store_renamed(self, store_pc: int, ssn: int) -> Optional[int]:
        """Record a renamed store; returns the SSN of the previous store in
        its set (store-store serialisation), or ``None``.

        Mirrors ``LFST[SSIT[st.PC]] = INUM++`` from Table 1.
        """
        self.stats.store_lookups += 1
        ssid = self.ssid_of(store_pc)
        if ssid == _INVALID_SSID:
            return None
        index = ssid & self._lfst_mask
        previous = self._lfst[index]
        self._lfst[index] = ssn
        self.stats.lfst_updates += 1
        return previous if previous > 0 else None

    def store_committed(self, store_pc: int, ssn: int) -> None:
        """Clear the LFST entry if this store is still the last fetched one."""
        ssid = self.ssid_of(store_pc)
        if ssid == _INVALID_SSID:
            return
        index = ssid & self._lfst_mask
        if self._lfst[index] == ssn:
            self._lfst[index] = 0

    # -- training ---------------------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Train on a memory-ordering violation between ``load_pc`` and
        ``store_pc`` using the original set-assignment/merge rules."""
        load_index = self._ssit_index(load_pc)
        store_index = self._ssit_index(store_pc)
        load_ssid = self._ssit[load_index]
        store_ssid = self._ssit[store_index]

        if load_ssid == _INVALID_SSID and store_ssid == _INVALID_SSID:
            ssid = self._allocate_ssid()
            self._ssit[load_index] = ssid
            self._ssit[store_index] = ssid
            self.stats.assignments += 1
        elif load_ssid == _INVALID_SSID:
            self._ssit[load_index] = store_ssid
            self.stats.assignments += 1
        elif store_ssid == _INVALID_SSID:
            self._ssit[store_index] = load_ssid
            self.stats.assignments += 1
        elif load_ssid != store_ssid:
            # Merge: both move to the smaller SSID (declining-SSID convention).
            winner = min(load_ssid, store_ssid)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner
            self.stats.merges += 1

    def _allocate_ssid(self) -> int:
        ssid = self._next_ssid
        self._next_ssid = (self._next_ssid + 1) & self._lfst_mask
        return ssid

    # -- maintenance ------------------------------------------------------------

    def clear(self) -> None:
        """Clear both tables (periodic clearing in the original proposal)."""
        self._ssit = [_INVALID_SSID] * self.config.ssit_entries
        self._lfst = [0] * self.config.lfst_entries
        self._next_ssid = 0

    def ssit_signature(self) -> tuple:
        """Hashable snapshot of the SSIT (set-membership structure only).

        The LFST is excluded on purpose: it holds transient youngest-
        in-flight SSNs, which functional warming (where every store commits
        instantly) cannot and need not reproduce.
        """
        return tuple(self._ssit)

"""Store Sequence Numbers (SSNs).

Section 3.1 of the paper names stores by their SSNs, monotonically increasing
sequence numbers defined by SVW.  A store is in-flight iff its SSN is greater
than the global committed counter ``SSNcmt``; the SQ index of an in-flight
store is the low-order bits of its SSN (the SQ size is a power of two).

The paper uses 16-bit SSNs and handles wrap-around by draining the pipeline
and clearing every SSN-holding structure when a store with SSN == 0 is
renamed (once every 2^N stores).  The simulator keeps SSNs as unbounded
Python integers for simplicity of comparison, but :class:`SSNAllocator`
reports when a hardware wrap would occur so the pipeline can charge the drain
penalty and so the statistics reflect the 16-bit implementation.
"""

from __future__ import annotations

from dataclasses import dataclass


def sq_index(ssn: int, sq_size: int) -> int:
    """SQ index of the store with the given SSN (low-order bits of the SSN)."""
    if sq_size <= 0 or sq_size & (sq_size - 1):
        raise ValueError(f"SQ size must be a positive power of two, got {sq_size}")
    return ssn & (sq_size - 1)


@dataclass
class SSNAllocator:
    """Allocates SSNs to stores at rename and tracks commit progress.

    Attributes
    ----------
    bits:
        Width of the hardware SSN (16 in the paper).  Wrap events are
        reported every ``2**bits`` allocations.
    ssn_rename:
        SSN of the most recently renamed store (``SSNren`` in the paper).
        The first store receives SSN 1; SSN 0 means "no store".
    ssn_commit:
        SSN of the most recently committed store (``SSNcmt``).
    """

    bits: int = 16
    ssn_rename: int = 0
    ssn_commit: int = 0
    wraps: int = 0

    def __post_init__(self) -> None:
        if not 4 <= self.bits <= 64:
            raise ValueError("SSN width must be between 4 and 64 bits")
        # Wrap mask cached for the per-store allocate fast path (the period
        # is a power of two, so ``ssn % period == 0`` is a mask test).
        self._wrap_mask = (1 << self.bits) - 1

    @property
    def period(self) -> int:
        """Number of stores between hardware wrap events."""
        return 1 << self.bits

    def allocate(self) -> int:
        """Allocate the next SSN (called when a store renames).

        Returns the new SSN.  Callers should check :meth:`wrapped` to decide
        whether to model the drain-and-clear wrap procedure.
        """
        ssn = self.ssn_rename = self.ssn_rename + 1
        if not ssn & self._wrap_mask:
            self.wraps += 1
        return ssn

    def wrapped(self, ssn: int) -> bool:
        """True if allocating ``ssn`` corresponds to a hardware wrap event."""
        return not ssn & self._wrap_mask

    def commit(self, ssn: int) -> None:
        """Record that the store with ``ssn`` committed (in program order)."""
        if ssn != self.ssn_commit + 1:
            raise ValueError(
                f"stores must commit in SSN order: expected {self.ssn_commit + 1}, got {ssn}")
        self.ssn_commit = ssn

    def rewind_rename(self, ssn: int) -> None:
        """Rewind ``SSNren`` after a pipeline flush squashes younger stores.

        ``ssn`` is the SSN of the youngest *surviving* store (or ``ssn_commit``
        if no in-flight stores survive).
        """
        if ssn < self.ssn_commit:
            raise ValueError("cannot rewind past the commit point")
        if ssn > self.ssn_rename:
            raise ValueError("cannot rewind forward")
        self.ssn_rename = ssn

    def is_inflight(self, ssn: int) -> bool:
        """True if the store with ``ssn`` has renamed but not yet committed."""
        return self.ssn_commit < ssn <= self.ssn_rename

    def inflight_count(self) -> int:
        """Number of stores currently in flight."""
        return self.ssn_rename - self.ssn_commit

    def reset(self) -> None:
        """Reset to the initial state (used between simulations)."""
        self.ssn_rename = 0
        self.ssn_commit = 0
        self.wraps = 0

"""Store Alias Table (SAT).

Section 3.2: the SAT maps each store PC to the SSN of the youngest in-flight
instance of that store.  It is untagged (so two store PCs that alias to the
same index overwrite each other's entries, which is a performance issue only)
and each entry holds a single SSN.  The SSN of each store is inserted at
rename.  Like a register alias table, the SAT is repaired on pipeline
flushes, although repair is needed only for performance, not correctness.

Two repair mechanisms are implemented, mirroring the paper's analogy with RAT
repair: ``log`` (each update returns an undo record that the pipeline
replays, youngest first, when stores are squashed) and ``checkpoint``
(bounded number of full-table snapshots).  ``none`` disables repair so its
performance effect can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.core.predictors import SATConfig


class SATUndoRecord(NamedTuple):
    """Undo record produced by :meth:`StoreAliasTable.update` (log repair).

    A named tuple: one is produced per renamed store on the dispatch hot
    path, and tuple construction is several times cheaper than a (frozen)
    dataclass while keeping the same named, immutable reading surface.
    """

    index: int
    previous_ssn: int


@dataclass(slots=True)
class SATStats:
    """SAT activity counters."""

    updates: int = 0
    lookups: int = 0
    undos: int = 0
    checkpoints_taken: int = 0
    checkpoints_restored: int = 0
    checkpoint_overflows: int = 0


class StoreAliasTable:
    """Untagged store-PC -> youngest-in-flight-SSN table."""

    def __init__(self, config: Optional[SATConfig] = None) -> None:
        self.config = config or SATConfig()
        self.stats = SATStats()
        self._table: List[int] = [0] * self.config.entries
        self._index_mask = self.config.entries - 1
        self._checkpoints: Dict[int, List[int]] = {}
        self._next_checkpoint_id = 0

    def index_of(self, store_pc: int) -> int:
        """SAT index for a store PC (low-order PC bits, word-aligned)."""
        return (store_pc >> 2) & self._index_mask

    def index_of_partial(self, partial_store_pc: int) -> int:
        """SAT index for an already-partial store PC (as stored in the FSP)."""
        return partial_store_pc & self._index_mask

    # -- main operations --------------------------------------------------------

    def update(self, store_pc: int, ssn: int) -> SATUndoRecord:
        """Record ``ssn`` as the youngest in-flight instance of ``store_pc``.

        Returns an undo record for log-based repair.
        """
        table = self._table
        index = (store_pc >> 2) & self._index_mask
        previous = table[index]
        table[index] = ssn
        self.stats.updates += 1
        return SATUndoRecord(index, previous)

    def lookup(self, store_pc: int) -> int:
        """SSN of the youngest known instance of ``store_pc`` (0 if none)."""
        self.stats.lookups += 1
        return self._table[self.index_of(store_pc)]

    def lookup_partial(self, partial_store_pc: int) -> int:
        """Lookup by partial store PC (the value stored in FSP entries)."""
        self.stats.lookups += 1
        return self._table[self.index_of_partial(partial_store_pc)]

    # -- log-based repair -------------------------------------------------------

    def undo(self, record: SATUndoRecord) -> None:
        """Apply one undo record (youngest squashed store first)."""
        self._table[record.index] = record.previous_ssn
        self.stats.undos += 1

    # -- checkpoint-based repair ------------------------------------------------

    def checkpoint(self) -> Optional[int]:
        """Take a full-table checkpoint; returns its id, or ``None`` if the
        configured checkpoint budget is exhausted."""
        if len(self._checkpoints) >= self.config.checkpoints:
            self.stats.checkpoint_overflows += 1
            return None
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        self._checkpoints[checkpoint_id] = list(self._table)
        self.stats.checkpoints_taken += 1
        return checkpoint_id

    def restore(self, checkpoint_id: int) -> None:
        """Restore from a checkpoint and discard it along with younger ones."""
        if checkpoint_id not in self._checkpoints:
            raise KeyError(f"unknown SAT checkpoint {checkpoint_id}")
        self._table = list(self._checkpoints[checkpoint_id])
        self.stats.checkpoints_restored += 1
        for cid in list(self._checkpoints):
            if cid >= checkpoint_id:
                del self._checkpoints[cid]

    def release(self, checkpoint_id: int) -> None:
        """Discard a checkpoint without restoring (e.g. the branch committed)."""
        self._checkpoints.pop(checkpoint_id, None)

    # -- maintenance ------------------------------------------------------------

    def clear(self) -> None:
        """Clear all entries (SSN wrap handling)."""
        self._table = [0] * self.config.entries
        self._checkpoints.clear()

    def snapshot(self) -> List[int]:
        """Copy of the table contents (tests and diagnostics)."""
        return list(self._table)

    def state_signature(self) -> tuple:
        """Hashable snapshot of the table contents (exact)."""
        return tuple(self._table)

    def storage_bits(self, ssn_bits: int = 16) -> int:
        """Approximate storage cost in bits."""
        return ssn_bits * self.config.entries

"""Delay Distance Predictor (DDP).

Section 3.3: the DDP maps each static load to the distance (in dynamic
stores) between the load and the closest older store that causes its
mis-forwardings.  It is a tagged, PC-indexed, set-associative table; each
entry has a valid bit, partial tag, saturating counter, and two distance
fields.  The counter decides whether a load should be delayed at all; the
distance is used at rename to compute ``SSNdly = SSNren - Ddly``; the load
then waits until the store with that SSN has committed.

Training (all at load commit):

* On a *wrong forwarding prediction* the counter is incremented and a delay
  distance equal to ``SSNcmt - SSBF[load.addr]`` is learned, but only if it
  is smaller than the currently known distance (conservatively preserving
  information about previous delays).
* On a *correct forwarding prediction* the counter is decremented.
* To allow distances to be unlearned (not just the delay-or-not decision),
  each entry has a second "future" distance field trained in parallel; every
  ``future_interval`` (8) load instances the current field is replaced by the
  future field and the future field is reset.

Distances are clamped to the SQ size: any delay distance larger than the SQ
is effectively no delay at all (the store is guaranteed to have committed by
the time the load could possibly execute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.predictors import DDPConfig


@dataclass(slots=True)
class DDPEntry:
    """One DDP entry."""

    valid: bool = False
    tag: int = 0
    counter: int = 0
    current_distance: int = 0
    future_distance: int = 0
    instances: int = 0
    lru: int = 0


@dataclass(slots=True)
class DDPStats:
    """DDP activity counters."""

    lookups: int = 0
    hits: int = 0
    delays_predicted: int = 0
    learns: int = 0
    unlearns: int = 0
    inserts: int = 0
    evictions: int = 0
    promotions: int = 0


class DelayDistancePredictor:
    """Tagged, PC-indexed load-delay-distance predictor."""

    def __init__(self, config: Optional[DDPConfig] = None, sq_size: int = 64) -> None:
        self.config = config or DDPConfig()
        if sq_size <= 0 or sq_size & (sq_size - 1):
            raise ValueError("SQ size must be a positive power of two")
        self.sq_size = sq_size
        self.stats = DDPStats()
        self._sets: List[List[DDPEntry]] = [
            [DDPEntry() for _ in range(self.config.assoc)] for _ in range(self.config.sets)
        ]
        self._set_mask = self.config.sets - 1
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._counter_max = (1 << self.config.counter_bits) - 1
        self._no_delay_distance = sq_size  # "distance >= SQ size" means no delay
        self._tag_shift = self.config.sets.bit_length() - 1
        self._lru_clock = 0

    # -- indexing ---------------------------------------------------------------

    def _index(self, load_pc: int) -> int:
        return (load_pc >> 2) & self._set_mask

    def _tag(self, load_pc: int) -> int:
        return ((load_pc >> 2) >> self._tag_shift) & self._tag_mask

    def _find(self, load_pc: int) -> Optional[DDPEntry]:
        pc = load_pc >> 2
        tag = (pc >> self._tag_shift) & self._tag_mask
        for entry in self._sets[pc & self._set_mask]:
            if entry.valid and entry.tag == tag:
                return entry
        return None

    # -- prediction -------------------------------------------------------------

    def predict_distance(self, load_pc: int) -> Optional[int]:
        """Delay distance for this load, or ``None`` for no delay.

        ``None`` is returned when the load has no DDP entry, its counter is
        below threshold, or its learned distance is at least the SQ size
        (which can impose no effective delay).
        """
        self.stats.lookups += 1
        entry = self._find(load_pc)
        if entry is None:
            return None
        self.stats.hits += 1
        if entry.counter < self.config.counter_threshold:
            return None
        if entry.current_distance >= self._no_delay_distance:
            return None
        self.stats.delays_predicted += 1
        return entry.current_distance

    def delay_ssn(self, load_pc: int, ssn_rename: int) -> int:
        """``SSNdly`` for a load renamed when ``SSNren == ssn_rename``.

        Returns 0 (no delay) when the predictor does not delay this load.
        """
        distance = self.predict_distance(load_pc)
        if distance is None:
            return 0
        ssn_dly = ssn_rename - distance
        return max(ssn_dly, 0)

    # -- training ---------------------------------------------------------------

    def train_wrong_prediction(self, load_pc: int, observed_distance: int) -> None:
        """Train on a wrong forwarding prediction.

        ``observed_distance`` is ``SSNcmt - SSBF[load.addr]`` computed at load
        commit: the distance (in dynamic stores) from the load's commit point
        back to the actual most recent store to its address.
        """
        observed_distance = max(0, min(observed_distance, self._no_delay_distance))
        entry = self._find(load_pc)
        if entry is None:
            self._insert(load_pc, observed_distance)
            return
        self.stats.learns += 1
        entry.counter = min(self._counter_max, entry.counter + self.config.positive_weight)
        # Conservatively keep the smallest (most conservative) distance.
        if observed_distance < entry.current_distance:
            entry.current_distance = observed_distance
        if observed_distance < entry.future_distance:
            entry.future_distance = observed_distance
        self._tick(entry)

    def train_correct_prediction(self, load_pc: int) -> None:
        """Train on a correct forwarding prediction (decrement the counter)."""
        entry = self._find(load_pc)
        if entry is None:
            return
        self.stats.unlearns += 1
        entry.counter = max(0, entry.counter - self.config.negative_weight)
        self._tick(entry)

    def _tick(self, entry: DDPEntry) -> None:
        """Advance the per-entry instance counter; promote the future field
        every ``future_interval`` instances (distance down-training)."""
        entry.instances += 1
        if entry.instances >= self.config.future_interval:
            entry.instances = 0
            entry.current_distance = entry.future_distance
            entry.future_distance = self._no_delay_distance
            self.stats.promotions += 1

    def _insert(self, load_pc: int, distance: int) -> None:
        index = self._index(load_pc)
        tag = self._tag(load_pc)
        ways = self._sets[index]
        self.stats.inserts += 1
        self._lru_clock += 1
        for entry in ways:
            if not entry.valid:
                self._fill(entry, tag, distance)
                return
        victim = min(ways, key=lambda e: (e.counter, e.lru))
        self.stats.evictions += 1
        self._fill(victim, tag, distance)

    def _fill(self, entry: DDPEntry, tag: int, distance: int) -> None:
        entry.valid = True
        entry.tag = tag
        entry.counter = min(self._counter_max, self.config.positive_weight)
        entry.current_distance = distance
        entry.future_distance = distance
        entry.instances = 0
        entry.lru = self._lru_clock

    # -- maintenance ------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Clear the predictor."""
        for ways in self._sets:
            for entry in ways:
                entry.valid = False
                entry.counter = 0

    def occupancy(self) -> int:
        return sum(1 for ways in self._sets for e in ways if e.valid)

    def state_signature(self) -> frozenset:
        """The set of (set index, tag, current distance) delays held
        (counters/LRU excluded; see the FSP's ``state_signature``)."""
        return frozenset(
            (index, entry.tag, entry.current_distance)
            for index, ways in enumerate(self._sets)
            for entry in ways if entry.valid)

    def storage_bits(self) -> int:
        """Approximate storage cost in bits (two distances + counter + tag)."""
        distance_bits = (self.sq_size - 1).bit_length()
        per_entry = 1 + self.config.tag_bits + self.config.counter_bits + 2 * distance_bits
        return per_entry * self.config.entries

"""Two-plane trace representation: shared static plane + thin dynamic plane.

The paper's workloads are small static programs replayed at scale: a 10M
instruction trace touches only a few hundred *static* instructions.  Every
field derivable from the static instruction — operation class, source and
destination register tuples, issue-class routing, branch hints, execution
latency — is therefore decoded exactly once per static program into a
:class:`StaticProgramPlane` (struct-of-arrays indexed by a small *static
index*), and a dynamic instruction stream is a :class:`EncodedOps`: per-uop
static-plane indices plus the few genuinely dynamic fields (address, store
value, branch direction/target).

This replaces per-uop :class:`~repro.isa.uop.MicroOp` object construction on
every hot path (trace composition, the detailed core's dispatch loop,
functional warming) with flat list indexing, and makes segments cheaply
picklable (lists of ints instead of object graphs).  ``MicroOp`` remains the
thin *view* type: :meth:`EncodedOps.view` materialises one on demand for
tests, examples, and the back-compat object path.

Encoding is lossless and order-preserving: ``encode_uops(uops).uops == uops``
for any valid micro-op list, which is what keeps every consumer of the
encoded form bit-identical to the object form (pinned by the golden
regression tests).

Static indices are *per-plane*: two planes built from different composition
orders may number the same descriptor differently.  Within a process, all
segments of a workload share one registry plane
(:func:`repro.workloads.program.plane_for`); an :class:`EncodedOps` that
crosses a process boundary ships its plane's descriptor table and is
re-interned on arrival (:meth:`EncodedOps.rebase`), so encoded segments are
safe to pickle between pool workers and through the on-disk segment memo.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.registers import validate_reg
from repro.isa.uop import (
    DEFAULT_LATENCIES,
    MAX_ACCESS_SIZE,
    VALID_ACCESS_SIZES,
    MemAccess,
    MicroOp,
    OpClass,
)

#: Dispatch-routing kind codes (what the per-uop loop branches on).
KIND_OTHER = 0
KIND_BRANCH = 1
KIND_LOAD = 2
KIND_STORE = 3

_KIND_OF = {
    OpClass.LOAD: KIND_LOAD,
    OpClass.STORE: KIND_STORE,
    OpClass.BRANCH: KIND_BRANCH,
}

#: Issue-bandwidth class of each op class (budget buckets of
#: :class:`~repro.pipeline.config.IssueLimits`).  Lives here — not in the
#: core — because it is static-plane dispatch metadata, precomputed per
#: static instruction.
ISSUE_CLASS_OF = {
    OpClass.INT_ALU: "int",
    OpClass.INT_MUL: "int",
    OpClass.NOP: "int",
    OpClass.FP_ALU: "fp",
    OpClass.FP_MUL: "fp",
    OpClass.FP_DIV: "fp",
    OpClass.BRANCH: "branch",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
}

#: Positional index of each issue class, in the order the core's per-class
#: structures (ready heaps, issue budgets) are laid out.  Precomputed per
#: static instruction so integer-indexed kernels never hash the class name.
ISSUE_INDEX_OF = {"int": 0, "fp": 1, "branch": 2, "load": 3, "store": 4}

#: A static descriptor: everything about one static instruction.
Descriptor = Tuple[int, OpClass, Optional[int], Tuple[int, ...], bool, bool]


class StaticProgramPlane:
    """Struct-of-arrays over the static instructions of one program.

    Every array is indexed by the *static index* returned from
    :meth:`intern`; the arrays are append-only (a plane only grows), so a
    static index handed out once stays valid for the life of the plane.
    """

    __slots__ = ("descriptors", "pc", "op_class", "dest", "srcs", "kind",
                 "issue_class", "issue_index", "latency", "hint_call",
                 "hint_return", "_intern", "_pc_cache")

    def __init__(self) -> None:
        self.descriptors: List[Descriptor] = []
        self.pc: List[int] = []
        self.op_class: List[OpClass] = []
        self.dest: List[Optional[int]] = []
        self.srcs: List[Tuple[int, ...]] = []
        self.kind: List[int] = []
        self.issue_class: List[str] = []
        self.issue_index: List[int] = []
        self.latency: List[int] = []
        self.hint_call: List[bool] = []
        self.hint_return: List[bool] = []
        self._intern: Dict[Descriptor, int] = {}
        self._pc_cache: Dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self.descriptors)

    def intern(self, pc: int, op_class: OpClass, dest: Optional[int],
               srcs: Tuple[int, ...], hint_call: bool = False,
               hint_return: bool = False) -> int:
        """The static index of a descriptor, interning it on first sight."""
        key = (pc, op_class, dest, srcs, hint_call, hint_return)
        index = self._intern.get(key)
        if index is None:
            if pc < 0:
                raise ValueError(f"negative pc {pc:#x}")
            # Registers are validated once per static instruction, here, so
            # the per-uop hot loops can index the RAT directly.
            if dest is not None:
                validate_reg(dest)
            for src in srcs:
                validate_reg(src)
            index = len(self.descriptors)
            self.descriptors.append(key)
            self.pc.append(pc)
            self.op_class.append(op_class)
            self.dest.append(dest)
            self.srcs.append(srcs)
            self.kind.append(_KIND_OF.get(op_class, KIND_OTHER))
            issue_class = ISSUE_CLASS_OF[op_class]
            self.issue_class.append(issue_class)
            self.issue_index.append(ISSUE_INDEX_OF[issue_class])
            self.latency.append(DEFAULT_LATENCIES[op_class])
            self.hint_call.append(hint_call)
            self.hint_return.append(hint_return)
            self._intern[key] = index
        return index

    def intern_cached(self, pc: int, op_class: OpClass, dest: Optional[int],
                      srcs: Tuple[int, ...], hint_call: bool = False,
                      hint_return: bool = False) -> int:
        """Like :meth:`intern`, memoised on the PC.

        The emit hot path re-encounters the same static instruction at the
        same PC on every kernel iteration; a single-entry-per-PC cache turns
        the descriptor-tuple hash into a few comparisons.  PCs that alias
        several descriptors simply fall through to :meth:`intern`.
        """
        cached = self._pc_cache.get(pc)
        if (cached is not None and cached[1] is op_class
                and cached[2] == dest and cached[3] == srcs
                and cached[4] == hint_call and cached[5] == hint_return):
            return cached[0]
        index = self.intern(pc, op_class, dest, srcs, hint_call, hint_return)
        self._pc_cache[pc] = (index, op_class, dest, srcs, hint_call,
                              hint_return)
        return index

    def dispatch_arrays(self) -> Tuple[List, ...]:
        """The static dispatch metadata as one tuple of parallel arrays.

        ``(kind, pc, dest, srcs, issue_index, latency, hint_call,
        hint_return)`` — everything a per-uop kernel hoists before its run
        loop, batched so the hoist is a single call and every kernel (the
        object path's dispatch closure, the vector kernel) reads the same
        arrays in the same order.
        """
        return (self.kind, self.pc, self.dest, self.srcs, self.issue_index,
                self.latency, self.hint_call, self.hint_return)

    @classmethod
    def from_descriptors(cls, descriptors: Sequence[Descriptor]
                         ) -> "StaticProgramPlane":
        """Rebuild a plane from a shipped descriptor table (unpickling)."""
        plane = cls()
        for descriptor in descriptors:
            plane.intern(*descriptor)
        return plane


class EncodedOps:
    """A dynamic instruction stream over a shared static plane.

    Parallel lists, one entry per dynamic micro-op:

    * ``sidx`` — static-plane index (op class, registers, routing, hints);
    * ``addr`` / ``size`` — effective address and width (0 for non-memory);
    * ``value`` — store value (−1 for loads and non-memory ops: loads carry
      no value by design, see :mod:`repro.isa.uop`);
    * ``taken`` / ``target`` — branch direction and target (−1 = no target).

    Slicing shares the plane and is O(window); :meth:`extend` concatenates,
    re-interning across planes when needed; pickling ships the descriptor
    table so a segment is self-contained across processes.
    """

    __slots__ = ("name", "plane", "sidx", "addr", "size", "value", "taken",
                 "target")

    def __init__(self, plane: Optional[StaticProgramPlane] = None,
                 name: str = "") -> None:
        self.name = name
        self.plane = plane if plane is not None else StaticProgramPlane()
        self.sidx: List[int] = []
        self.addr: List[int] = []
        self.size: List[int] = []
        self.value: List[int] = []
        self.taken: List[bool] = []
        self.target: List[int] = []

    # ------------------------------------------------------------- building --

    def append(self, sidx: int, addr: int = 0, size: int = 0,
               value: int = -1, taken: bool = False, target: int = -1) -> None:
        self.sidx.append(sidx)
        self.addr.append(addr)
        self.size.append(size)
        self.value.append(value)
        self.taken.append(taken)
        self.target.append(target)

    def extend(self, other: "EncodedOps") -> None:
        """Append ``other``'s micro-ops (re-interning across planes)."""
        if other.plane is not self.plane:
            other = other.rebase(self.plane)
        self.sidx.extend(other.sidx)
        self.addr.extend(other.addr)
        self.size.extend(other.size)
        self.value.extend(other.value)
        self.taken.extend(other.taken)
        self.target.extend(other.target)

    def rebase(self, plane: StaticProgramPlane) -> "EncodedOps":
        """This stream re-interned onto ``plane`` (shared-plane slices of
        independently built or unpickled segments can then concatenate)."""
        if plane is self.plane:
            return self
        remap = [plane.intern(*descriptor)
                 for descriptor in self.plane.descriptors]
        rebased = EncodedOps(plane, name=self.name)
        rebased.sidx = [remap[si] for si in self.sidx]
        rebased.addr = self.addr
        rebased.size = self.size
        rebased.value = self.value
        rebased.taken = self.taken
        rebased.target = self.target
        return rebased

    def with_name(self, name: str) -> "EncodedOps":
        """A shallow named alias of this stream (shares every array)."""
        named = EncodedOps.__new__(EncodedOps)
        named.name = name
        named.plane = self.plane
        named.sidx = self.sidx
        named.addr = self.addr
        named.size = self.size
        named.value = self.value
        named.taken = self.taken
        named.target = self.target
        return named

    def dynamic_arrays(self) -> Tuple[List, ...]:
        """The per-uop dynamic fields as one tuple of parallel arrays.

        ``(sidx, addr, size, value, taken, target)`` — the batch-accessor
        counterpart of :meth:`StaticProgramPlane.dispatch_arrays` for the
        dynamic plane.
        """
        return (self.sidx, self.addr, self.size, self.value, self.taken,
                self.target)

    # ------------------------------------------------------------- sequence --

    def __len__(self) -> int:
        return len(self.sidx)

    def slice(self, lo: int, hi: int) -> "EncodedOps":
        out = EncodedOps.__new__(EncodedOps)
        out.name = self.name
        out.plane = self.plane
        out.sidx = self.sidx[lo:hi]
        out.addr = self.addr[lo:hi]
        out.size = self.size[lo:hi]
        out.value = self.value[lo:hi]
        out.taken = self.taken[lo:hi]
        out.target = self.target[lo:hi]
        return out

    def truncated(self, max_uops: int) -> "EncodedOps":
        """Back-compat analogue of :meth:`DynamicTrace.truncated`."""
        return self.slice(0, max_uops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            lo, hi, step = index.indices(len(self.sidx))
            if step != 1:
                raise ValueError("EncodedOps slicing requires step 1")
            return self.slice(lo, hi)
        return self.view(index)

    def __iter__(self) -> Iterator[MicroOp]:
        for i in range(len(self.sidx)):
            yield self.view(i)

    def view(self, i: int) -> MicroOp:
        """Materialise micro-op ``i`` as a full :class:`MicroOp` (thin view
        for tests, examples, and the object-path back-compat loop)."""
        plane = self.plane
        si = self.sidx[i]
        kind = plane.kind[si]
        mem = None
        if kind == KIND_LOAD:
            mem = MemAccess(self.addr[i], self.size[i])
        elif kind == KIND_STORE:
            mem = MemAccess(self.addr[i], self.size[i], self.value[i])
        target = self.target[i]
        return MicroOp(pc=plane.pc[si], op_class=plane.op_class[si],
                       dest=plane.dest[si], srcs=plane.srcs[si], mem=mem,
                       is_taken=self.taken[i],
                       target=target if target >= 0 else None,
                       hint_call=plane.hint_call[si],
                       hint_return=plane.hint_return[si])

    @property
    def uops(self) -> List[MicroOp]:
        """Every micro-op as a view object (O(n) decode; back-compat only)."""
        return [self.view(i) for i in range(len(self.sidx))]

    @property
    def stats(self):
        """Trace statistics, computed straight off the arrays."""
        from repro.isa.trace import TraceStats

        plane = self.plane
        kind = plane.kind
        op_class = plane.op_class
        pcs = plane.pc
        stats = TraceStats(total=len(self.sidx))
        seen = set()
        load_pcs = set()
        store_pcs = set()
        for i, si in enumerate(self.sidx):
            seen.add(pcs[si])
            k = kind[si]
            if k == KIND_LOAD:
                stats.loads += 1
                load_pcs.add(pcs[si])
            elif k == KIND_STORE:
                stats.stores += 1
                store_pcs.add(pcs[si])
            elif k == KIND_BRANCH:
                stats.branches += 1
                if self.taken[i]:
                    stats.taken_branches += 1
            elif op_class[si].is_fp:
                stats.fp_ops += 1
            elif op_class[si].is_int:
                stats.int_ops += 1
        stats.unique_pcs = len(seen)
        stats.unique_load_pcs = len(load_pcs)
        stats.unique_store_pcs = len(store_pcs)
        return stats

    # ------------------------------------------------------------- equality --

    def _content(self) -> List[tuple]:
        descriptors = self.plane.descriptors
        return [(descriptors[si], addr, size, value, taken, target)
                for si, addr, size, value, taken, target
                in zip(self.sidx, self.addr, self.size, self.value,
                       self.taken, self.target)]

    def __eq__(self, other) -> bool:
        if not isinstance(other, EncodedOps):
            return NotImplemented
        if len(self) != len(other):
            return False
        if self.plane is other.plane:
            return (self.sidx == other.sidx and self.addr == other.addr
                    and self.size == other.size and self.value == other.value
                    and self.taken == other.taken
                    and self.target == other.target)
        return self._content() == other._content()

    __hash__ = None  # mutable container

    # -------------------------------------------------------------- pickling --

    def __getstate__(self) -> tuple:
        return (self.name, self.plane.descriptors, self.sidx, self.addr,
                self.size, self.value, self.taken, self.target)

    def __setstate__(self, state: tuple) -> None:
        (self.name, descriptors, self.sidx, self.addr, self.size, self.value,
         self.taken, self.target) = state
        self.plane = StaticProgramPlane.from_descriptors(descriptors)


def encode_uops(uops: Sequence[MicroOp],
                plane: Optional[StaticProgramPlane] = None,
                name: str = "") -> EncodedOps:
    """Encode a micro-op sequence onto ``plane`` (fresh plane when ``None``).

    Lossless: ``encode_uops(uops).uops == list(uops)``.
    """
    encoded = EncodedOps(plane, name=name)
    intern = encoded.plane.intern
    for uop in uops:
        si = intern(uop.pc, uop.op_class, uop.dest, uop.srcs,
                    uop.hint_call, uop.hint_return)
        mem = uop.mem
        if mem is not None:
            value = mem.value if mem.value is not None else -1
            encoded.append(si, mem.addr, mem.size, value)
        else:
            target = uop.target if uop.target is not None else -1
            encoded.append(si, taken=uop.is_taken, target=target)
    return encoded


def as_encoded(trace, name: Optional[str] = None) -> EncodedOps:
    """Coerce a trace-like (``EncodedOps``, ``DynamicTrace``, or a micro-op
    sequence) to :class:`EncodedOps`, preserving content exactly."""
    if isinstance(trace, EncodedOps):
        return trace if name is None or trace.name == name \
            else trace.with_name(name)
    uops = getattr(trace, "uops", trace)
    return encode_uops(uops, name=name or getattr(trace, "name", ""))


__all__ = [
    "KIND_OTHER", "KIND_BRANCH", "KIND_LOAD", "KIND_STORE",
    "ISSUE_CLASS_OF", "ISSUE_INDEX_OF", "StaticProgramPlane", "EncodedOps",
    "encode_uops", "as_encoded", "MAX_ACCESS_SIZE", "VALID_ACCESS_SIZES",
]

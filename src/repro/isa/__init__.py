"""Trace micro-op ISA.

The paper evaluates on Alpha AXP binaries.  This reproduction replaces the
Alpha front end with a compact *trace ISA*.  The production representation
is **two-plane** (:mod:`repro.isa.plane`): a
:class:`~repro.isa.plane.StaticProgramPlane` decoded once per static
program (op classes, register tuples, issue-class routing, branch hints,
latencies) plus :class:`~repro.isa.plane.EncodedOps` dynamic streams
carrying only per-instance fields (address / size / store value, branch
outcome / target).  :class:`~repro.isa.uop.MicroOp` remains the one-object
view of a single dynamic instruction — materialised on demand for tests,
examples, and the core's back-compat object path.
"""

from repro.isa.registers import ArchRegisterFile, INT_REG_COUNT, FP_REG_COUNT, REG_ZERO
from repro.isa.uop import MemAccess, MicroOp, OpClass
from repro.isa.plane import EncodedOps, StaticProgramPlane, as_encoded, encode_uops
from repro.isa.trace import DynamicTrace, TraceStats, TraceWriter, read_trace, write_trace

__all__ = [
    "ArchRegisterFile",
    "DynamicTrace",
    "EncodedOps",
    "StaticProgramPlane",
    "as_encoded",
    "encode_uops",
    "FP_REG_COUNT",
    "INT_REG_COUNT",
    "MemAccess",
    "MicroOp",
    "OpClass",
    "REG_ZERO",
    "TraceStats",
    "TraceWriter",
    "read_trace",
    "write_trace",
]

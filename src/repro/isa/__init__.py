"""Trace micro-op ISA.

The paper evaluates on Alpha AXP binaries.  This reproduction replaces the
Alpha front end with a compact *trace ISA*: workload generators emit dynamic
streams of :class:`~repro.isa.uop.MicroOp` records that carry everything the
timing model needs (PC, operation class, register operands, memory address /
size / store value, branch outcome).  The out-of-order core in
:mod:`repro.pipeline` consumes these streams directly.
"""

from repro.isa.registers import ArchRegisterFile, INT_REG_COUNT, FP_REG_COUNT, REG_ZERO
from repro.isa.uop import MemAccess, MicroOp, OpClass
from repro.isa.trace import DynamicTrace, TraceStats, TraceWriter, read_trace, write_trace

__all__ = [
    "ArchRegisterFile",
    "DynamicTrace",
    "FP_REG_COUNT",
    "INT_REG_COUNT",
    "MemAccess",
    "MicroOp",
    "OpClass",
    "REG_ZERO",
    "TraceStats",
    "TraceWriter",
    "read_trace",
    "write_trace",
]

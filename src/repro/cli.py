"""Console entry points.

``repro-bench`` (declared in ``setup.py``) runs the full benchmark /
trajectory suite — ``benchmarks/run_all.py`` — which regenerates every
paper artifact through the experiment engine, applies the sanity
assertions, and writes the ``BENCH_*.json`` trajectory files.

The benchmarks live next to the repository (they write trajectory files at
the repo root and are also collected by pytest-benchmark), not inside the
installed package, so the entry point locates ``benchmarks/run_all.py``
relative to an editable install or the current working directory.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path


def _find_run_all() -> Path:
    """Locate ``benchmarks/run_all.py`` for an editable install or checkout."""
    candidates = [
        # Current working directory (running from a checkout).
        Path.cwd() / "benchmarks" / "run_all.py",
        # Editable install: src/repro/cli.py -> repo root is two levels up.
        Path(__file__).resolve().parent.parent.parent / "benchmarks" / "run_all.py",
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise FileNotFoundError(
        "benchmarks/run_all.py not found; run repro-bench from a repository "
        "checkout (or an editable install), as the benchmark suite writes "
        "its BENCH_*.json trajectory files at the repository root")


def main() -> int:
    """Run the benchmark suite; exit status mirrors ``run_all.main()``."""
    run_all = _find_run_all()
    sys.path.insert(0, str(run_all.parent))
    globals_dict = runpy.run_path(str(run_all), run_name="__repro_bench__")
    return int(globals_dict["main"]())


if __name__ == "__main__":
    sys.exit(main())

"""Load-store unit: store queue, load queue, and forwarding policies.

The store queue (:mod:`repro.lsu.store_queue`) is the age-ordered buffer of
in-flight stores shared by every configuration.  What differs between the
paper's configurations is *how loads access it*:

* :class:`~repro.lsu.policies.OracleAssociativePolicy` — idealised
  fully-associative search with oracle load scheduling (the Figure 4
  baseline).
* :class:`~repro.lsu.policies.AssociativeStoreSetsPolicy` — fully-associative
  search with Store Sets style scheduling, at a configurable SQ latency
  (3-cycle ideal or 5-cycle realistic), with optimistic-replay or
  forwarding-prediction wake-up of dependants.
* :class:`~repro.lsu.policies.IndexedSQPolicy` — the paper's contribution:
  speculative indexed SQ access driven by the FSP/SAT, optionally guarded by
  the DDP delay predictor.
"""

from repro.lsu.store_queue import StoreQueue, StoreQueueEntry
from repro.lsu.load_queue import LoadQueue
from repro.lsu.policies import (
    AssociativeStoreSetsPolicy,
    ForwardDecision,
    IndexedSQPolicy,
    LoadCommitInfo,
    LoadPrediction,
    OracleAssociativePolicy,
    SQPolicy,
)

__all__ = [
    "AssociativeStoreSetsPolicy",
    "ForwardDecision",
    "IndexedSQPolicy",
    "LoadCommitInfo",
    "LoadPrediction",
    "LoadQueue",
    "OracleAssociativePolicy",
    "SQPolicy",
    "StoreQueue",
    "StoreQueueEntry",
]

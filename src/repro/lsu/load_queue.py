"""Load queue.

With SVW-filtered re-execution the load queue needs no address CAM
(Section 2, Figure 2): it is an age-ordered buffer holding, per in-flight
load, the executed value and the SVW sequence number used by the
re-execution filter.  The timing model keeps most per-load state in its
in-flight records; this class provides the capacity (structural hazard)
model plus the per-entry fields a hardware LQ would hold, so occupancy and
SVW bookkeeping are testable in isolation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional


@dataclass(slots=True)
class LoadQueueEntry:
    """One in-flight load."""

    seq: int
    pc: int
    addr: Optional[int] = None
    size: int = 0
    value: Optional[int] = None
    svw_ssn: int = 0
    forwarded: bool = False


@dataclass(slots=True)
class LoadQueueStats:
    """LQ activity counters."""

    allocations: int = 0
    releases: int = 0
    squashes: int = 0
    full_stalls: int = 0


class LoadQueue:
    """Age-ordered load queue without an address CAM."""

    def __init__(self, size: int = 128) -> None:
        if size <= 0:
            raise ValueError("LQ size must be positive")
        self.size = size
        self.stats = LoadQueueStats()
        self._entries: Deque[LoadQueueEntry] = deque()
        self._by_seq: Dict[int, LoadQueueEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def allocate(self, seq: int, pc: int) -> LoadQueueEntry:
        """Allocate an entry for a renamed load (program order)."""
        if self.is_full():
            raise RuntimeError("load queue overflow; caller must check is_full()")
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError("loads must be allocated in program order")
        entry = LoadQueueEntry(seq=seq, pc=pc)
        self._entries.append(entry)
        self._by_seq[seq] = entry
        self.stats.allocations += 1
        return entry

    def record_execution(self, seq: int, addr: int, size: int, value: int,
                         svw_ssn: int, forwarded: bool) -> None:
        """Fill in the executed address/value/SVW fields for a load."""
        entry = self._by_seq.get(seq)
        if entry is None:
            raise KeyError(f"load seq {seq} is not in the LQ")
        entry.addr = addr
        entry.size = size
        entry.value = value
        entry.svw_ssn = svw_ssn
        entry.forwarded = forwarded

    def get(self, seq: int) -> Optional[LoadQueueEntry]:
        return self._by_seq.get(seq)

    def release(self, seq: int) -> LoadQueueEntry:
        """Load commit: remove the oldest entry (must have sequence ``seq``)."""
        if not self._entries:
            raise RuntimeError("release from an empty load queue")
        entry = self._entries[0]
        if entry.seq != seq:
            raise ValueError(f"loads must commit in order: head seq {entry.seq}, got {seq}")
        self._entries.popleft()
        del self._by_seq[seq]
        self.stats.releases += 1
        return entry

    def squash_younger(self, seq: int) -> int:
        """Remove all entries with sequence number greater than ``seq``."""
        removed = 0
        while self._entries and self._entries[-1].seq > seq:
            entry = self._entries.pop()
            del self._by_seq[entry.seq]
            removed += 1
            self.stats.squashes += 1
        return removed

"""Pluggable execution backends: one dispatch seam under every fan-out.

The engine's three fan-out paths — the supervised job pool, the raw-pool
escape hatch, and sharded checkpoint generation — all speak one protocol
now: an :class:`ExecutionBackend` accepts a list of :class:`DispatchJob`
and yields ``("start", index)`` / ``("done", index, value)`` completion
events.  The event stream (consumed by :func:`repro.exec.dispatch.dispatch`
or its asyncio facade) is what makes progress streaming and CI-driven
early stopping possible later without touching call sites again.

Three in-tree backends, all **bit-identical** on every workload (jobs are
pure functions of their spec):

* :class:`SerialBackend` — the always-available in-process reference.
  Runs jobs in input order; failure semantics match the supervised pool's
  degraded-serial path (exceptions are collected per job, the rest of the
  sweep completes, then one structured
  :class:`~repro.exec.resilience.ExperimentFailure`).
* :class:`SupervisedPoolBackend` — today's
  :func:`~repro.exec.resilience.run_supervised` semantics (per-job
  deadlines, crash retry, pool self-healing, degradation, fault plans)
  moved *behind* the seam, not duplicated: it forwards the
  :func:`~repro.exec.resilience.supervised_events` stream.  With
  ``supervised=False`` (the ``REPRO_SUPERVISE=0`` escape hatch) it runs a
  raw ``multiprocessing`` pool instead.
* :class:`LocalClusterBackend` — the distributed seam's proof: N
  independent worker processes pull jobs **work-stealing-style** from a
  spool of content-addressed job descriptors and publish records through
  the existing checksummed store machinery
  (:class:`~repro.exec.cache.ResultCache` frames, quarantine, degradation).
  Workers drain their home ticket partition first and steal from the
  others when idle; crashes, hangs, and damaged blobs are detected by the
  coordinator and retried, with an in-process fallback so a poisoned
  spool still completes.  Teardown always reaps every worker and removes
  the spool — no orphan processes, no stranded ``*.tmp`` or ticket files.

**Job dependencies** (``DispatchJob.deps``, each ``dep < index``) express
ordering constraints explicitly instead of relying on pool-FIFO luck:

* the supervised pool *dispatch-gates* — a job is not handed to a worker
  until its dependencies have been dispatched, which preserves the
  checkpoint chains' compose-ahead overlap (a consumer may run
  concurrently with its producer and wait in-worker for the handoff);
* the local cluster *completion-gates* — a ticket is not spooled until
  its dependencies' results are published, so a worker never waits on a
  handoff that is not already in the store (no in-worker waits to
  deadlock a one-worker cluster);
* the serial backend runs input order, which satisfies any valid DAG.

Backend selection: ``REPRO_BACKEND`` (``serial`` / ``supervised-pool`` /
``local-cluster``; validated at engine construction, ``EnvKnobError`` on
garbage) forces a backend; unset means *auto* — serial for one-worker
fan-outs, the supervised pool otherwise.  Execution-only, like every
scheduling knob: never part of cache or snapshot keys.  ``REPRO_SPOOL_DIR``
relocates cluster spools (default: the system temp directory).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exec import resilience as _resilience
from repro.exec.cache import ResultCache
from repro.exec.resilience import (
    BACKEND_NAMES,
    ExperimentFailure,
    JobFailure,
    backoff_delay,
    resolve_backend_name,
    resolve_spool_dir,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendCapabilities",
    "DispatchJob",
    "ExecutionBackend",
    "LocalClusterBackend",
    "SerialBackend",
    "SupervisedPoolBackend",
    "resolve_backend",
    "resolve_backend_name",
]


@dataclass(frozen=True)
class DispatchJob:
    """One schedulable unit: an index, a payload, and its dependencies.

    ``index`` must equal the job's position in the submitted list (results
    are addressed by it); ``deps`` lists indices of jobs that must be
    scheduled ahead of this one (each ``dep < index`` — topological input
    order).  How strictly "ahead" is interpreted is a backend property:
    dispatch-order for the supervised pool, completion-order for the
    cluster (see the module docstring).
    """

    index: int
    payload: Any
    label: str = ""
    deps: Tuple[int, ...] = ()


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend does with the knobs callers may hand it.

    ``supports_chunksize`` documents the ``chunksize`` contract: ``True``
    means consecutive jobs are batched per worker assignment;``False``
    means the hint is accepted but a documented no-op (serial execution
    and the one-ticket-per-job cluster have nothing to batch).  The value
    is still *validated* everywhere — a malformed chunksize is rejected at
    the engine, never silently ignored (it used to be, on the serial
    path).  ``supervised`` covers crash/deadline retries and structured
    failure reports; ``distributed`` means jobs travel through a shared
    content-addressed spool rather than in-process queues.
    """

    name: str
    parallel: bool
    supervised: bool
    distributed: bool
    supports_chunksize: bool
    max_workers: int


class ExecutionBackend:
    """Protocol: ``submit(fn, jobs)`` yields completion events.

    Events are ``("start", index)`` and ``("done", index, value)``;
    exactly one ``done`` per job on success.  Permanent job failures are
    collected and raised as one
    :class:`~repro.exec.resilience.ExperimentFailure` *after* every other
    job has completed (never a hang, never a silent drop).  Abandoning
    the iterator (``close()``) tears the backend's workers down — the
    generator ``finally`` blocks are the lifecycle.
    """

    capabilities: BackendCapabilities
    #: Scheduling counters of the most recent completed ``submit`` (e.g.
    #: ``steals``, ``job_retries``); empty until one finishes.
    last_submit_stats: Dict[str, int]

    def submit(self, fn: Callable[[Any], Any], jobs: Sequence[DispatchJob],
               *, scope: str = "job",
               chunksize: Optional[int] = None) -> Iterator[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived resources (per-submit backends: no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_jobs(jobs: Sequence[DispatchJob]) -> List[DispatchJob]:
    jobs = list(jobs)
    for position, job in enumerate(jobs):
        if job.index != position:
            raise ValueError(
                f"job at position {position} carries index {job.index}; "
                f"DispatchJob.index must equal the list position")
        for dep in job.deps:
            if not 0 <= dep < job.index:
                raise ValueError(
                    f"job {job.index} depends on {dep}: dependencies must "
                    f"point at earlier jobs (topological input order)")
    return jobs


# ------------------------------------------------------------------ serial --

class SerialBackend(ExecutionBackend):
    """The always-available in-process reference backend.

    Input order satisfies any valid dependency DAG (``dep < index``), and
    the failure semantics mirror the supervised pool's degraded-serial
    path: per-job exceptions are collected, the remaining jobs complete,
    then one structured :class:`ExperimentFailure` is raised.  ``chunksize``
    is a documented no-op (there is no assignment to batch).
    """

    def __init__(self) -> None:
        self.capabilities = BackendCapabilities(
            name="serial", parallel=False, supervised=True,
            distributed=False, supports_chunksize=False, max_workers=1)
        self.last_submit_stats = {}

    def submit(self, fn, jobs, *, scope="job", chunksize=None):
        jobs = _check_jobs(jobs)
        before = _resilience.counters_snapshot()
        failures: List[JobFailure] = []
        for job in jobs:
            yield ("start", job.index)
            try:
                value = fn(job.payload)
            except Exception:
                text = traceback.format_exc(limit=12)
                failures.append(JobFailure(
                    index=job.index,
                    label=job.label or f"{scope} {job.index}",
                    kind="exception", attempts=0,
                    error=text.strip().splitlines()[-1]))
            else:
                yield ("done", job.index, value)
        self.last_submit_stats = _resilience.counters_delta(before)
        if failures:
            raise ExperimentFailure(failures)


# --------------------------------------------------------- supervised pool --

class SupervisedPoolBackend(ExecutionBackend):
    """The single-host pool behind the seam: supervised by default.

    Forwards :func:`~repro.exec.resilience.supervised_events` — one
    scheduler implementation, not a copy — so deadlines, crash retry,
    self-healing, degradation, and fault plans all apply unchanged.  With
    ``supervised=False`` (``REPRO_SUPERVISE=0``) it runs a raw
    ``multiprocessing`` pool instead: no retries, no deadlines, results
    stream in input order (the A/B overhead baseline).
    """

    def __init__(self, workers: int, *, supervised: Optional[bool] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None) -> None:
        self.workers = max(1, int(workers))
        if supervised is None:
            supervised = _resilience.supervision_enabled()
        self._supervised = bool(supervised)
        self._timeout = timeout
        self._retries = retries
        self.capabilities = BackendCapabilities(
            name="supervised-pool", parallel=self.workers > 1,
            supervised=self._supervised, distributed=False,
            supports_chunksize=True, max_workers=self.workers)
        self.last_submit_stats = {}

    def submit(self, fn, jobs, *, scope="job", chunksize=None):
        jobs = _check_jobs(jobs)
        payloads = [job.payload for job in jobs]
        labels = [job.label or f"{scope} {job.index}" for job in jobs]
        chunksize = 1 if chunksize is None else max(1, int(chunksize))
        if self._supervised:
            deps = [job.deps for job in jobs] \
                if any(job.deps for job in jobs) else None
            stats = yield from _resilience.supervised_events(
                fn, payloads, self.workers, scope=scope, labels=labels,
                chunksize=chunksize, timeout=self._timeout,
                retries=self._retries, deps=deps)
            self.last_submit_stats = dict(stats or {})
            return
        # Raw escape hatch: plain pool, in-order imap dispatch (dependency
        # order holds because deps point earlier and dispatch is FIFO);
        # exceptions propagate raw, exactly like the pre-seam hatch.
        before = _resilience.counters_snapshot()
        ctx = _resilience._pool_context()
        with ctx.Pool(processes=self.workers) as pool:
            for job, value in zip(jobs, pool.imap(fn, payloads, chunksize)):
                yield ("start", job.index)
                yield ("done", job.index, value)
        self.last_submit_stats = _resilience.counters_delta(before)


# ----------------------------------------------------------- local cluster --

#: Coordinator poll cadence: how often results/claims/liveness are scanned.
_CLUSTER_POLL_SECONDS = 0.02

#: Idle worker sleep between empty ticket scans.
_CLUSTER_IDLE_SECONDS = 0.005

#: Grace given to a graceful stop before terminate()/kill() escalation.
_CLUSTER_STOP_GRACE_SECONDS = 2.0

#: File whose existence tells cluster workers to drain and exit.
_STOP_SENTINEL = "stop"


def _spool_digest(index: int, payload: Any) -> str:
    """Content address of one job descriptor (index + payload identity).

    The index participates so duplicate payloads in one submission stay
    distinct spool entries (results are addressed per job, not per value).
    """
    blob = pickle.dumps((index, payload), protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def _remove_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _claim_next_ticket(partitions: Sequence[str], claims_dir: str,
                       slot: int) -> Optional[Tuple[int, int, str, bool, str]]:
    """Atomically claim the next ticket, own partition first, then steal.

    Tickets are files named ``<index>.<attempt>.<digest>``; a claim is an
    ``os.replace`` into the claims directory under
    ``<index>.<attempt>.<digest>.<slot>.<pid>`` — atomic on POSIX, so two
    workers can never both win one ticket.  Returns ``(index, attempt,
    digest, stolen, claim_path)`` or ``None`` when every partition is dry.
    """
    for position, partition in enumerate(partitions):
        try:
            names = sorted(os.listdir(partition))
        except OSError:
            continue
        for name in names:
            parts = name.split(".")
            if len(parts) != 3:
                continue
            claim_path = os.path.join(
                claims_dir, f"{name}.{slot}.{os.getpid()}")
            try:
                os.replace(os.path.join(partition, name), claim_path)
            except OSError:
                continue  # another worker won the race
            return (int(parts[0]), int(parts[1]), parts[2],
                    position != 0, claim_path)
    return None


def _cluster_worker_main(slot: int, workers: int, spool: str, fn,
                         scope: str, deadline_active: bool) -> None:
    """Cluster worker loop: claim ticket -> run job -> publish result.

    Stateless by design: everything the worker needs travels through the
    spool's checksummed stores.  The claim file is removed only *after*
    the result is published, so the coordinator can always distinguish
    in-flight (claim present) from lost (no ticket, no claim, no result).
    """
    _resilience.mark_pool_worker()
    jobs_store = ResultCache(os.path.join(spool, "jobs"))
    results_store = ResultCache(os.path.join(spool, "results"))
    claims_dir = os.path.join(spool, "claims")
    tickets = [os.path.join(spool, "tickets", f"p{k}") for k in range(workers)]
    order = tickets[slot:] + tickets[:slot]  # home partition first
    stop_path = os.path.join(spool, _STOP_SENTINEL)
    while not os.path.exists(stop_path):
        claim = _claim_next_ticket(order, claims_dir, slot)
        if claim is None:
            time.sleep(_CLUSTER_IDLE_SECONDS)
            continue
        index, attempt, digest, stolen, claim_path = claim
        before = _resilience.counters_snapshot()
        if stolen:
            _resilience.count("cluster_steals")
        job = jobs_store.get(digest)
        try:
            if job is None:
                # The descriptor blob was damaged (now quarantined): the
                # coordinator still owns the payload, so report the loss
                # and let it respool a fresh descriptor.
                message: tuple = ("lost", "job descriptor unreadable",
                                  _resilience.counters_delta(before))
            else:
                _resilience._maybe_inject_job_fault(
                    scope, index, attempt, deadline_active)
                value = fn(job[1])
                message = ("ok", value, _resilience.counters_delta(before))
        except BaseException:
            message = ("error", traceback.format_exc(limit=12),
                       _resilience.counters_delta(before))
        results_store.put(f"{digest}-a{attempt}", message)
        _remove_quiet(claim_path)


@dataclass
class _ClusterJobState:
    job: DispatchJob
    digest: str
    attempt: int = 0
    ticket_path: Optional[str] = None
    claim_path: Optional[str] = None
    claim_slot: Optional[int] = None
    claim_pid: Optional[int] = None
    claim_seen: float = 0.0
    ready_at: float = 0.0
    spooled: bool = False
    started: bool = False
    done: bool = False
    failed: bool = False


class LocalClusterBackend(ExecutionBackend):
    """Work-stealing multi-process cluster over a content-addressed spool.

    The distributed seam's in-tree proof: the coordinator serialises each
    job descriptor into a checksummed store (``spool/jobs``), drops a
    ticket into one of N per-worker partitions (round-robin home
    assignment), and N worker processes claim tickets — own partition
    first, stealing from the others when idle — and publish results
    through ``spool/results``.  Every blob transits the
    :class:`~repro.exec.cache.ResultCache` frame machinery, so torn writes
    and bit rot are quarantined and retried, never silently wrong.

    Failure semantics match the supervised pool where they overlap: dead
    workers are detected by claim-file liveness (the claim name carries
    the pid) and respawned; claimed jobs that outlive the per-job deadline
    get their worker killed; both are retried with backoff up to
    ``REPRO_RETRIES``, then failed as structured
    :class:`~repro.exec.resilience.JobFailure` entries.  Results lost to
    blob damage or store degradation are retried too, with an in-process
    coordinator fallback as the last resort, so a sweep completes even on
    a fully poisoned spool.  Dependencies are completion-gated: a ticket
    is only spooled once every dependency's result is published.

    Teardown (any exit path, including an abandoned iterator) stops and
    reaps every worker and deletes the spool directory.
    """

    def __init__(self, workers: int, *, spool_dir: Optional[os.PathLike] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None) -> None:
        self.workers = max(1, int(workers))
        self._spool_root = spool_dir if spool_dir is not None \
            else resolve_spool_dir()
        self._timeout = _resilience.resolve_job_timeout() \
            if timeout is None else float(timeout)
        self._retries = _resilience.resolve_retries() \
            if retries is None else int(retries)
        self.capabilities = BackendCapabilities(
            name="local-cluster", parallel=self.workers > 1, supervised=True,
            distributed=True, supports_chunksize=False,
            max_workers=self.workers)
        self.last_submit_stats = {}

    # -- spool plumbing ----------------------------------------------------

    def _make_spool(self) -> str:
        root = self._spool_root
        if root is not None:
            os.makedirs(root, exist_ok=True)
        spool = tempfile.mkdtemp(prefix="repro-spool-", dir=root)
        for k in range(self.workers):
            os.makedirs(os.path.join(spool, "tickets", f"p{k}"))
        os.makedirs(os.path.join(spool, "claims"))
        return spool

    @staticmethod
    def _result_key(state: _ClusterJobState) -> str:
        return f"{state.digest}-a{state.attempt}"

    def _spool_ticket(self, spool: str, state: _ClusterJobState) -> None:
        partition = os.path.join(spool, "tickets",
                                 f"p{state.job.index % self.workers}")
        name = f"{state.job.index:08d}.{state.attempt}.{state.digest}"
        path = os.path.join(partition, name)
        with open(path, "w"):
            pass
        state.ticket_path = path
        state.claim_path = None
        state.claim_pid = None
        state.spooled = True

    # -- submission --------------------------------------------------------

    def submit(self, fn, jobs, *, scope="job", chunksize=None):
        jobs = _check_jobs(jobs)
        # chunksize accepted but a no-op: one ticket per job is what makes
        # stealing fine-grained (documented on the capabilities).
        total = len(jobs)
        self.last_submit_stats = {}
        if total == 0:
            return
        before_counters = _resilience.counters_snapshot()
        stats: Dict[str, int] = {}

        def bump(name: str, value: int = 1) -> None:
            stats[name] = stats.get(name, 0) + value

        spool = self._make_spool()
        jobs_store = ResultCache(os.path.join(spool, "jobs"))
        results_store = ResultCache(os.path.join(spool, "results"))
        claims_dir = os.path.join(spool, "claims")
        deadline_active = self._timeout > 0
        states = [_ClusterJobState(job=job,
                                   digest=_spool_digest(job.index, job.payload))
                  for job in jobs]
        failures: List[JobFailure] = []
        workers: List[Optional[object]] = [None] * self.workers
        ctx = _resilience._pool_context()
        degraded = False
        crash_deaths = 0
        degrade_after = max(3, self.workers + 1)

        def label(state: _ClusterJobState) -> str:
            return state.job.label or f"{scope} {state.job.index}"

        def fail(state: _ClusterJobState, kind: str, error: str) -> None:
            state.failed = True
            failures.append(JobFailure(
                index=state.job.index, label=label(state), kind=kind,
                attempts=state.attempt, error=error))

        def spawn(slot: int) -> None:
            process = ctx.Process(
                target=_cluster_worker_main,
                args=(slot, self.workers, spool, fn, scope, deadline_active),
                daemon=True)
            process.start()
            workers[slot] = process

        def run_inline(state: _ClusterJobState):
            """Coordinator-side last resort (degraded pool / poisoned
            store): no spool round-trip, so it cannot lose the result."""
            bump("cluster_inline_jobs")
            if not state.started:
                state.started = True
                yield ("start", state.job.index)
            try:
                value = fn(state.job.payload)
            except Exception:
                fail(state, "exception", traceback.format_exc(
                    limit=12).strip().splitlines()[-1])
            else:
                state.done = True
                yield ("done", state.job.index, value)

        def retry_or_inline(state: _ClusterJobState, kind: str, error: str):
            """Charge an attempt; respool within budget, else give up on
            the spool for this job and run it inline (kinds that mean the
            *store* lost the result) or fail it (worker kinds)."""
            state.attempt += 1
            state.spooled = False
            state.claim_path = None
            state.claim_pid = None
            if state.attempt <= self._retries and not degraded:
                bump("job_retries")
                state.ready_at = time.monotonic() + backoff_delay(
                    state.attempt, label(state))
                return
            if kind in ("crash", "timeout"):
                fail(state, kind, error)
                return
            yield from run_inline(state)

        def resolved(index: int) -> bool:
            return states[index].done or states[index].failed

        try:
            for slot in range(self.workers):
                spawn(slot)

            while not all(state.done or state.failed for state in states):
                now = time.monotonic()

                # Spool every eligible job: dependencies completed (or
                # failed — their consumers fall back to recompute paths),
                # backoff elapsed, not already in flight.
                for state in states:
                    if (state.done or state.failed or state.spooled
                            or state.ready_at > now):
                        continue
                    if any(not resolved(dep) for dep in state.job.deps):
                        continue
                    if degraded:
                        yield from run_inline(state)
                        continue
                    # (Re)publish the descriptor on every spool: a retry
                    # after a quarantined descriptor heals the store, and
                    # re-framing an intact one is cheap.
                    jobs_store.put(state.digest,
                                   (state.job.index, state.job.payload))
                    self._spool_ticket(spool, state)

                time.sleep(_CLUSTER_POLL_SECONDS)
                now = time.monotonic()

                # Observe claims: start events, liveness, deadlines.
                try:
                    claim_names = os.listdir(claims_dir)
                except OSError:
                    claim_names = []
                claims: Dict[int, Tuple[str, int, int, int]] = {}
                for name in claim_names:
                    parts = name.split(".")
                    if len(parts) != 5:
                        continue
                    claims[int(parts[0])] = (
                        os.path.join(claims_dir, name), int(parts[1]),
                        int(parts[3]), int(parts[4]))
                for state in states:
                    claim = claims.get(state.job.index)
                    if claim is None or state.done or state.failed:
                        continue
                    path, attempt, slot, pid = claim
                    if attempt != state.attempt:
                        continue  # stale claim of a superseded attempt
                    if state.claim_path != path:
                        state.claim_path = path
                        state.claim_slot = slot
                        state.claim_pid = pid
                        state.claim_seen = now
                        if not state.started:
                            state.started = True
                            yield ("start", state.job.index)

                # Collect published results.
                for state in states:
                    if state.done or state.failed or not state.spooled:
                        continue
                    message = results_store.get(self._result_key(state))
                    if message is None:
                        # No readable result, the ticket is claimed, and
                        # the claim is already retired: the worker
                        # published (results land before the claim is
                        # removed) but the blob was lost — quarantined,
                        # a vanished write, or stranded in the worker's
                        # in-memory fallback.  Retry through the spool,
                        # inline as the last resort.
                        claim = claims.get(state.job.index)
                        claim_active = (claim is not None
                                        and claim[1] == state.attempt)
                        if (not claim_active and state.ticket_path is not None
                                and not os.path.exists(state.ticket_path)):
                            yield from retry_or_inline(
                                state, "lost", "result blob lost in spool")
                        continue
                    status, value, delta = message
                    # Worker deltas (steals, job faults, store repairs)
                    # land in the global counters here; the final
                    # last_submit_stats delta picks them up from there.
                    _resilience.merge_counters(delta)
                    if not state.started:
                        state.started = True
                        yield ("start", state.job.index)
                    if status == "ok":
                        state.done = True
                        yield ("done", state.job.index, value)
                    elif status == "error":
                        # Deterministic job exception: permanent, like
                        # every other backend.
                        fail(state, "exception",
                             value.strip().splitlines()[-1])
                    else:  # "lost": descriptor damaged, respool it
                        yield from retry_or_inline(
                            state, "lost", "job descriptor lost in spool")

                # Liveness + deadlines for claimed, unfinished jobs.  A
                # crashed child is a *zombie* until reaped, and zombies
                # still accept signal 0 — so liveness must come from the
                # Process objects (``is_alive()`` also reaps), never from
                # ``os.kill(pid, 0)``.
                now = time.monotonic()
                alive_pids = {process.pid for process in workers
                              if process is not None and process.is_alive()}
                for state in states:
                    if (state.done or state.failed or not state.spooled
                            or state.claim_pid is None):
                        continue
                    if state.claim_pid not in alive_pids:
                        # Re-check the result store before declaring a
                        # crash: the worker may have published and exited.
                        message = results_store.get(self._result_key(state))
                        if message is not None:
                            continue  # picked up next iteration
                        bump("worker_crashes")
                        crash_deaths += 1
                        _remove_quiet(state.claim_path)
                        slot = state.claim_slot
                        if crash_deaths >= degrade_after:
                            degraded = True
                            bump("pool_degraded")
                        elif slot is not None:
                            process = workers[slot]
                            if process is not None and not process.is_alive():
                                process.join()
                                bump("pool_respawns")
                                spawn(slot)
                        yield from retry_or_inline(
                            state, "crash",
                            f"cluster worker died (pid {state.claim_pid})")
                    elif (deadline_active
                          and now - state.claim_seen > self._timeout):
                        bump("job_timeouts")
                        try:
                            os.kill(state.claim_pid, signal.SIGKILL)
                        except OSError:
                            pass
                        slot = state.claim_slot
                        if slot is not None and workers[slot] is not None:
                            workers[slot].join(_CLUSTER_STOP_GRACE_SECONDS)
                            bump("pool_respawns")
                            spawn(slot)
                        _remove_quiet(state.claim_path)
                        yield from retry_or_inline(
                            state, "timeout",
                            f"deadline exceeded ({self._timeout:g}s)")

                if degraded:
                    # Tear the pool down once; the spool loop above runs
                    # the remaining jobs inline from here on.
                    for slot, process in enumerate(workers):
                        if process is not None:
                            process.terminate()
                            process.join(_CLUSTER_STOP_GRACE_SECONDS)
                            if process.is_alive():  # pragma: no cover
                                process.kill()
                                process.join()
                            workers[slot] = None
                    for state in states:
                        if not (state.done or state.failed):
                            state.spooled = False
        finally:
            try:
                with open(os.path.join(spool, _STOP_SENTINEL), "w"):
                    pass
            except OSError:  # pragma: no cover - spool already gone
                pass
            deadline = time.monotonic() + _CLUSTER_STOP_GRACE_SECONDS
            for process in workers:
                if process is None:
                    continue
                process.join(max(0.0, deadline - time.monotonic()))
                if process.is_alive():
                    process.terminate()
                    process.join(_CLUSTER_STOP_GRACE_SECONDS)
                if process.is_alive():  # pragma: no cover - SIGTERM ignored
                    process.kill()
                    process.join()
            shutil.rmtree(spool, ignore_errors=True)

        _resilience.merge_counters(stats)
        self.last_submit_stats = _resilience.counters_delta(before_counters)
        if failures:
            raise ExperimentFailure(
                sorted(failures, key=lambda failure: failure.index))


# -------------------------------------------------------------- resolution --

def resolve_backend(workers: int, *,
                    name: Optional[str] = None) -> ExecutionBackend:
    """Build the backend a fan-out of ``workers`` should run on.

    ``name`` (or ``REPRO_BACKEND`` when ``None``) forces a backend; auto
    picks ``serial`` for one-worker fan-outs and ``supervised-pool``
    otherwise (honouring the ``REPRO_SUPERVISE=0`` raw escape hatch).
    Every choice is bit-identical; only wall-clock and failure-recovery
    behaviour differ.
    """
    if name is None:
        name = resolve_backend_name()
    if name is None:
        name = "supervised-pool" if workers > 1 else "serial"
    if name == "serial":
        return SerialBackend()
    if name == "supervised-pool":
        return SupervisedPoolBackend(max(1, workers))
    return LocalClusterBackend(max(1, workers))

"""Job specifications and the per-process job runner.

A :class:`JobSpec` names one ``(workload, configuration)`` simulation by
*value*: the workload name, the configuration name, the experiment settings,
and an optional predictor-suite override.  Traces are deterministic functions
of ``(name, instructions, seed)``, so specs — not pickled multi-megabyte
traces — are what travels to worker processes; each worker rebuilds (and
memoises) the traces it needs.

``run_job`` is the single entry point executed on both the serial path and
inside pool workers, which is what makes serial and parallel sweeps
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.predictors import PredictorSuiteConfig
    from repro.harness.runner import ExperimentSettings, RunRecord
    from repro.isa.trace import DynamicTrace


@dataclass(frozen=True)
class JobSpec:
    """One ``(workload, configuration)`` simulation, described by value."""

    workload: str
    config_name: str
    settings: "ExperimentSettings"
    predictors: Optional["PredictorSuiteConfig"] = None


#: Per-process trace memo: (name, instructions, seed) -> DynamicTrace.  Kept
#: small; sweeps are ordered workload-major so in practice one entry is live.
_TRACE_CACHE: Dict[Tuple[str, int, int], "DynamicTrace"] = {}
_TRACE_CACHE_LIMIT = 8


def _trace_for(spec: JobSpec) -> "DynamicTrace":
    from repro.workloads.suites import build_workload

    key = (spec.workload, spec.settings.instructions, spec.settings.seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = build_workload(spec.workload, instructions=spec.settings.instructions,
                               seed=spec.settings.seed)
        while len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace


def run_job(spec: JobSpec) -> "RunRecord":
    """Build (or reuse) the trace for ``spec`` and simulate it.

    Imports are deferred so that :mod:`repro.exec` never imports
    :mod:`repro.harness` at module level (the harness imports the engine).
    """
    from repro.harness.runner import run_workload

    trace = _trace_for(spec)
    return run_workload(trace, spec.config_name, spec.settings,
                        predictors=spec.predictors)

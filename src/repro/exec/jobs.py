"""Job specifications and the per-process job runner.

A :class:`JobSpec` names one ``(workload, configuration)`` simulation by
*value*: the workload name, the configuration name, the experiment settings,
and an optional predictor-suite override.  Traces are deterministic functions
of ``(name, instructions, seed)``, so specs — not pickled multi-megabyte
traces — are what travels to worker processes; each worker rebuilds (and
memoises) the traces it needs.

``run_job`` is the single entry point executed on both the serial path and
inside pool workers, which is what makes serial and parallel sweeps
bit-identical.

Checkpoint *generation* work travels the same way but with its own spec
type: the engine's generation stage fans
:class:`~repro.sampling.checkpoints.ShardJobSpec` (one stitched chunk of
one warming chain) out over the pool via
:func:`~repro.sampling.checkpoints.run_shard_job` before the interval jobs
here are simulated.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.predictors import PredictorSuiteConfig
    from repro.harness.runner import ExperimentSettings, RunRecord
    from repro.isa.plane import EncodedOps


@dataclass(frozen=True)
class JobSpec:
    """One ``(workload, configuration)`` simulation, described by value.

    When ``settings.sampling`` is set, the spec names a *sampled* run: the
    engine expands it into one :class:`IntervalJobSpec` per measurement
    interval (fanned out and cached independently) and merges the interval
    records back into a single
    :class:`~repro.sampling.result.SampledSimulationResult`-backed record.
    """

    workload: str
    config_name: str
    settings: "ExperimentSettings"
    predictors: Optional["PredictorSuiteConfig"] = None


@dataclass(frozen=True)
class IntervalJobSpec:
    """One sampling interval of a sampled ``(workload, configuration)`` run.

    Fully described by value: the worker regenerates the interval's trace
    window (:func:`repro.workloads.suites.build_workload_window`),
    functionally warms a fresh machine over the window prefix, and then
    simulates the detailed warm-up + measured region.  ``settings.sampling``
    must be the plan the interval index refers to.

    With ``checkpointed`` set (stamped by the engine or the sampling driver
    after resolving ``settings.checkpoints`` / ``REPRO_CHECKPOINTS``), the
    worker instead loads the interval's full-history snapshot from the
    checkpoint store (:mod:`repro.sampling.checkpoints`) and simulates only
    the detailed warm-up + measured region.  The flag is part of the result
    cache key (it changes the simulated statistics); ``checkpoint_dir`` is
    not (snapshots are content-addressed, their location is irrelevant).
    """

    workload: str
    config_name: str
    settings: "ExperimentSettings"
    interval_index: int
    predictors: Optional["PredictorSuiteConfig"] = None
    checkpointed: bool = False
    checkpoint_dir: Optional[str] = None


#: Per-process trace memo: (name, instructions, seed) -> encoded trace.
#: Kept small; sweeps are ordered workload-major so in practice one entry is
#: live.
_TRACE_CACHE: Dict[Tuple[str, int, int], "EncodedOps"] = {}
_TRACE_CACHE_LIMIT = 8


def _trace_for(spec: JobSpec) -> "EncodedOps":
    from repro.workloads.suites import build_workload

    key = (spec.workload, spec.settings.instructions, spec.settings.seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = build_workload(spec.workload, instructions=spec.settings.instructions,
                               seed=spec.settings.seed)
        while len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace


#: Per-process counter distinguishing successive profile dumps from one
#: worker (the engine's run directory plus the pid provide the rest of
#: the namespace).
_PROFILE_SEQ = 0


def run_job(spec) -> "RunRecord":
    """Execute one job spec (plain, sampled, or a single sampling interval).

    When the engine exported ``_REPRO_PROFILE_RUN`` (the ``REPRO_PROFILE``
    knob), the execution is wrapped in :mod:`cProfile` and the stats are
    dumped into the run directory as ``job-<pid>-<n>.pstats`` — on the
    serial path and inside pool workers alike, since both enter here.
    Profiling observes only; the returned record is bit-identical either
    way.
    """
    profile_dir = os.environ.get("_REPRO_PROFILE_RUN")
    if not profile_dir:
        return _run_job(spec)

    import cProfile

    global _PROFILE_SEQ
    _PROFILE_SEQ += 1
    path = os.path.join(profile_dir,
                        f"job-{os.getpid()}-{_PROFILE_SEQ}.pstats")
    profile = cProfile.Profile()
    try:
        return profile.runcall(_run_job, spec)
    finally:
        try:
            profile.dump_stats(path)
        except OSError:  # pragma: no cover - profile dir raced away
            pass


def _run_job(spec) -> "RunRecord":
    """The actual job dispatch (see :func:`run_job`).

    Imports are deferred so that :mod:`repro.exec` never imports
    :mod:`repro.harness` at module level (the harness imports the engine).
    Sampled base specs never materialise their (possibly 10M-instruction)
    trace — the sampling driver runs interval-by-interval over regenerated
    windows.
    """
    if isinstance(spec, IntervalJobSpec):
        from repro.sampling.driver import run_interval_job

        return run_interval_job(spec)

    if getattr(spec.settings, "sampling", None) is not None:
        from repro.sampling.driver import run_sampled_workload

        return run_sampled_workload(spec.workload, spec.config_name,
                                    spec.settings, predictors=spec.predictors)

    from repro.harness.runner import run_workload

    trace = _trace_for(spec)
    return run_workload(trace, spec.config_name, spec.settings,
                        predictors=spec.predictors)

"""Source-level fingerprints for content-addressed result caching.

A cached :class:`~repro.pipeline.core.SimulationResult` is only valid while
two things are unchanged: the code that *generates* the trace (workload
composer, kernels, micro-op model) and the code that *simulates* it (core,
LSU, memory hierarchy, predictors).  Traces themselves are deterministic
functions of ``(name, instructions, seed)`` given the generator sources, so
hashing the sources is equivalent to hashing the trace content — and it
avoids materialising a trace just to decide whether a sweep cell is a cache
hit.

Fingerprints are computed once per process and cover every ``*.py`` file in
the relevant sub-packages of :mod:`repro`.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import Sequence

import repro

#: Sub-packages (or individual modules) whose sources determine simulation
#: behaviour.  ``harness/runner.py`` belongs here because it maps
#: configuration *names* to policy parameters (``make_policy``) and drives
#: the per-job run (``run_workload``); the rest of the harness only
#: orchestrates jobs and formats reports, which cannot change a result.
SIMULATOR_SUBPACKAGES: Sequence[str] = (
    "pipeline", "lsu", "memory", "core", "frontend", "isa", "sampling",
    "harness/runner.py")

#: Sub-packages whose sources determine trace content.
WORKLOAD_SUBPACKAGES: Sequence[str] = ("workloads", "isa")

#: Sub-packages behind the analytical timing model (Table 2).
TIMING_SUBPACKAGES: Sequence[str] = ("timing",)


def _hash_tree(subpackages: Sequence[str]) -> str:
    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()

    def add_file(path: str) -> None:
        digest.update(os.path.relpath(path, root).encode())
        with open(path, "rb") as handle:
            digest.update(handle.read())

    for sub in subpackages:
        target = os.path.join(root, sub)
        if os.path.isfile(target):
            add_file(target)
            continue
        for dirpath, _dirnames, filenames in sorted(os.walk(target)):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    add_file(os.path.join(dirpath, filename))
    return digest.hexdigest()


@lru_cache(maxsize=None)
def simulator_fingerprint() -> str:
    """Digest of every source file that affects simulation results."""
    return _hash_tree(SIMULATOR_SUBPACKAGES)


@lru_cache(maxsize=None)
def workload_fingerprint() -> str:
    """Digest of every source file that affects generated trace content."""
    return _hash_tree(WORKLOAD_SUBPACKAGES)


@lru_cache(maxsize=None)
def timing_fingerprint() -> str:
    """Digest of the analytical timing-model sources (Table 2)."""
    return _hash_tree(TIMING_SUBPACKAGES)

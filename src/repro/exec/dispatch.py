"""Event-driven dispatcher over :mod:`repro.exec.backend` backends.

:func:`dispatch` is the one scheduler loop every fan-out call site uses:
it feeds a job list to a backend, consumes the ``("start", i)`` /
``("done", i, value)`` event stream, assembles results by index, and
measures *its own* overhead — the nanoseconds spent handling events, not
the time the backend spends computing — so the `BENCH_engine.json`
``backend_matrix`` leg can pin "the seam costs < 3%" as a number instead
of a hope.

:func:`dispatch_async` is the asyncio facade the ROADMAP's experiment
service wants: the same loop on a worker thread, events forwarded onto
the running loop, yielded as they happen.  Progress streaming and
CI-driven early stopping consume this without any call-site rewiring.

Scheduler observability: every run fills a :class:`DispatchStats`
(``backend``, ``queue_depth_peak``, ``inflight_peak``, ``steals``,
``dispatch_overhead_ns``) — surfaced in the engine's ``last_run_stats``
and, via :func:`scheduler_counters`, in every ``BENCH_*.json`` envelope.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.backend import DispatchJob, ExecutionBackend

__all__ = [
    "DispatchStats",
    "dispatch",
    "dispatch_async",
    "reset_scheduler_counters",
    "scheduler_counters",
]


@dataclass(frozen=True)
class DispatchStats:
    """Scheduling counters for one :func:`dispatch` run."""

    backend: str
    queue_depth_peak: int
    inflight_peak: int
    steals: int
    dispatch_overhead_ns: int
    #: Resilience-counter delta reported by the backend for this submit
    #: (retries, respawns, steals, ...); empty for a clean serial run.
    counters: Dict[str, int]

    def flat(self) -> Dict[str, Any]:
        """The merged flat mapping the engine folds into ``last_run_stats``."""
        merged: Dict[str, Any] = dict(self.counters)
        merged.update({
            "backend": self.backend,
            "queue_depth_peak": self.queue_depth_peak,
            "inflight_peak": self.inflight_peak,
            "steals": self.steals,
            "dispatch_overhead_ns": self.dispatch_overhead_ns,
        })
        return merged


# Process-wide scheduler totals, mirrored into every benchmark envelope
# (same pattern as the resilience counters).
_SCHED: Dict[str, int] = {}
_SCHED_LOCK = threading.Lock()


def _sched_count(name: str, value: int = 1) -> None:
    with _SCHED_LOCK:
        _SCHED[name] = _SCHED.get(name, 0) + value


def scheduler_counters() -> Dict[str, int]:
    """Cumulative dispatcher totals for this process (for envelopes)."""
    with _SCHED_LOCK:
        return dict(_SCHED)


def reset_scheduler_counters() -> None:
    with _SCHED_LOCK:
        _SCHED.clear()


def dispatch(backend: ExecutionBackend, fn: Callable[[Any], Any],
             jobs: Sequence[DispatchJob], *, scope: str = "job",
             chunksize: Optional[int] = None,
             on_event: Optional[Callable[[tuple], None]] = None,
             stats_sink: Optional[Dict[str, Any]] = None,
             ) -> Tuple[List[Any], DispatchStats]:
    """Run ``jobs`` on ``backend``; return ``(results, stats)`` in order.

    ``results[i]`` is the value of ``fn(jobs[i].payload)``.  ``on_event``
    observes every raw event as it arrives (the streaming hook).
    ``stats_sink``, when given, receives the flat stats mapping even when
    the submit ends in an :class:`~repro.exec.resilience.ExperimentFailure`
    — the engine's failure path reports scheduler state too.  The backend
    generator is always closed, so worker teardown runs on every exit
    path, including an exception thrown from ``on_event``.
    """
    jobs = list(jobs)
    total = len(jobs)
    results: List[Any] = [None] * total
    started = 0
    done = 0
    queue_depth_peak = total
    inflight_peak = 0
    overhead_ns = 0
    events = backend.submit(fn, jobs, scope=scope, chunksize=chunksize)
    try:
        while True:
            try:
                event = next(events)
            except StopIteration:
                break
            tick = time.perf_counter_ns()
            kind = event[0]
            if kind == "start":
                started += 1
            elif kind == "done":
                results[event[1]] = event[2]
                done += 1
            inflight = started - done
            if inflight > inflight_peak:
                inflight_peak = inflight
            if on_event is not None:
                on_event(event)
            overhead_ns += time.perf_counter_ns() - tick
    finally:
        events.close()
        counters = dict(backend.last_submit_stats)
        stats = DispatchStats(
            backend=backend.capabilities.name,
            queue_depth_peak=queue_depth_peak,
            inflight_peak=inflight_peak,
            steals=counters.get("cluster_steals", 0),
            dispatch_overhead_ns=overhead_ns,
            counters=counters)
        if stats_sink is not None:
            stats_sink.update(stats.flat())
        _sched_count("dispatch_runs")
        _sched_count("dispatch_jobs", total)
        _sched_count("dispatch_steals", stats.steals)
        _sched_count("dispatch_overhead_ns", overhead_ns)
    return results, stats


async def dispatch_async(backend: ExecutionBackend, fn: Callable[[Any], Any],
                         jobs: Sequence[DispatchJob], *, scope: str = "job",
                         chunksize: Optional[int] = None):
    """Async generator facade over :func:`dispatch`.

    Yields each backend event (``("start", i)`` / ``("done", i, value)``)
    as it happens, then one terminal ``("result", results, stats)``.  The
    synchronous dispatcher runs on a daemon thread; events cross over via
    ``loop.call_soon_threadsafe``.  Failures re-raise in the consumer's
    task after worker teardown has completed.
    """
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()

    def forward(event: tuple) -> None:
        loop.call_soon_threadsafe(queue.put_nowait, event)

    def runner() -> None:
        try:
            out = dispatch(backend, fn, jobs, scope=scope,
                           chunksize=chunksize, on_event=forward)
        except BaseException as exc:  # noqa: BLE001 - forwarded, not dropped
            loop.call_soon_threadsafe(queue.put_nowait, ("__error__", exc))
        else:
            loop.call_soon_threadsafe(queue.put_nowait, ("__done__", out))

    thread = threading.Thread(target=runner, daemon=True,
                              name="repro-dispatch")
    thread.start()
    try:
        while True:
            event = await queue.get()
            if event[0] == "__done__":
                results, stats = event[1]
                yield ("result", results, stats)
                return
            if event[0] == "__error__":
                raise event[1]
            yield event
    finally:
        await loop.run_in_executor(None, thread.join)

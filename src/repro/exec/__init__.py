"""Execution subsystem: parallel experiment engine + result caching.

This package is the performance substrate under every timing experiment:

* :class:`~repro.exec.jobs.JobSpec` — one ``(workload, configuration)``
  simulation described by value (specs travel to workers; traces do not).
* :class:`~repro.exec.engine.ExperimentEngine` — runs spec lists with an
  on-disk result cache and a ``multiprocessing`` fan-out.  Serial, parallel,
  and cached runs are bit-identical.
* :class:`~repro.exec.cache.ResultCache` — content-addressed memoization
  keyed by trace fingerprint, configuration, settings, and simulator source
  fingerprints.
* :class:`~repro.exec.jobs.IntervalJobSpec` — one measurement interval of a
  statistically sampled run (``settings.sampling``); the engine expands
  sampled specs into interval jobs, fans them out, caches each one
  independently, and merges the records deterministically (see
  :mod:`repro.sampling`).

* :mod:`repro.exec.resilience` — failure semantics for all of the above:
  supervised pool fan-out (per-job timeouts, crash detection, retry with
  backoff, pool self-healing, degradation to serial), integrity-checked
  store blobs with quarantine-and-recompute, and deterministic fault
  injection (``REPRO_FAULT_PLAN``) that proves faulted runs stay
  bit-identical.
* :mod:`repro.exec.backend` / :mod:`repro.exec.dispatch` — the pluggable
  execution seam: every fan-out (engine jobs *and* sharded checkpoint
  generation) goes through one event-driven dispatcher over an
  :class:`~repro.exec.backend.ExecutionBackend` — serial reference,
  supervised pool, or a work-stealing local cluster over a
  content-addressed spool (``REPRO_BACKEND``).  All backends are
  bit-identical; scheduler counters surface in ``last_run_stats`` and
  benchmark envelopes.

Environment knobs: ``REPRO_JOBS`` (worker count; <= 0 means all CPUs),
``REPRO_CACHE`` (``0`` disables caching), ``REPRO_CACHE_DIR`` (cache
location, default ``.repro-cache/``; delete it at any time to reset),
``REPRO_RETRIES`` / ``REPRO_JOB_TIMEOUT`` / ``REPRO_SUPERVISE`` /
``REPRO_FAULT_PLAN`` (failure semantics; see :mod:`repro.exec.resilience`),
``REPRO_BACKEND`` / ``REPRO_SPOOL_DIR`` (execution-backend selection and
cluster spool location; see :mod:`repro.exec.backend`).
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    BackendCapabilities,
    DispatchJob,
    ExecutionBackend,
    LocalClusterBackend,
    SerialBackend,
    SupervisedPoolBackend,
    resolve_backend,
)

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    generic_key,
    job_key,
)
from repro.exec.dispatch import (
    DispatchStats,
    dispatch,
    dispatch_async,
    scheduler_counters,
)
from repro.exec.engine import ExperimentEngine, available_cpus, resolve_jobs
from repro.exec.fingerprint import (
    simulator_fingerprint,
    timing_fingerprint,
    workload_fingerprint,
)
from repro.exec.jobs import IntervalJobSpec, JobSpec, run_job
from repro.exec.resilience import (
    EnvKnobError,
    ExperimentFailure,
    JobFailure,
    parse_fault_plan,
    resolve_backend_name,
    resolve_job_timeout,
    resolve_retries,
    run_supervised,
    supervised_events,
    supervision_enabled,
    validate_environment,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendCapabilities",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DispatchJob",
    "DispatchStats",
    "EnvKnobError",
    "ExecutionBackend",
    "ExperimentEngine",
    "ExperimentFailure",
    "JobFailure",
    "LocalClusterBackend",
    "SerialBackend",
    "SupervisedPoolBackend",
    "available_cpus",
    "dispatch",
    "dispatch_async",
    "IntervalJobSpec",
    "JobSpec",
    "ResultCache",
    "generic_key",
    "job_key",
    "parse_fault_plan",
    "resolve_backend",
    "resolve_backend_name",
    "resolve_job_timeout",
    "resolve_jobs",
    "resolve_retries",
    "run_job",
    "run_supervised",
    "scheduler_counters",
    "simulator_fingerprint",
    "supervised_events",
    "supervision_enabled",
    "timing_fingerprint",
    "validate_environment",
    "workload_fingerprint",
]

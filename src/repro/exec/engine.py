"""The experiment engine: parallel fan-out + on-disk result memoization.

:class:`ExperimentEngine` turns a list of :class:`~repro.exec.jobs.JobSpec`
into a list of :class:`~repro.harness.runner.RunRecord`, in input order,
using three layers:

* **result cache** — each spec is first looked up in a content-addressed
  on-disk cache (see :mod:`repro.exec.cache`); only misses are simulated.
* **process fan-out** — misses are executed on a ``multiprocessing`` pool.
  Workers receive specs (not traces) and rebuild traces deterministically,
  so a parallel run is bit-identical to a serial one.
* **serial fallback** — with one worker (or one job) everything runs
  in-process through the same :func:`~repro.exec.jobs.run_job` code path.
* **sampling expansion** — specs whose settings carry a
  :class:`~repro.sampling.plan.SamplingPlan` are expanded into per-interval
  jobs before the cache/pool pass and merged back afterwards, so sampled
  sweeps parallelise and memoize at interval granularity.
* **checkpoint generation** — sampled specs that resolve to checkpointed
  warming (``settings.checkpoints`` / ``REPRO_CHECKPOINTS``, see
  :mod:`repro.sampling.checkpoints`) get a generation stage between the
  cache probe and the fan-out: for each workload group with cache-missed
  intervals, the warming pass is **sharded** into (segment-aligned trace
  chunk x policy group) jobs stitched through boundary snapshots and
  fanned out over the pool — bit-identical to a single full pass, but
  parallel *inside* one workload (``REPRO_CHECKPOINT_SHARDS`` /
  ``ExperimentSettings.checkpoint_shards``); the interval jobs then load
  snapshots instead of re-warming.  Groups with a warm store skip
  generation entirely (the amortisation across configurations, sweeps,
  and runs).

Environment knobs:

``REPRO_JOBS``
    Default worker count when neither the engine nor the settings specify
    one.  ``0`` (or any value <= 0) means "all CPUs".
``REPRO_CACHE``
    Set to ``0`` to disable the result cache entirely.
``REPRO_CACHE_DIR``
    Cache directory (default ``.repro-cache/`` in the working directory).
    Safe to delete at any time: ``rm -rf .repro-cache/``.
``REPRO_CHECKPOINTS`` / ``REPRO_CHECKPOINT_DIR``
    Checkpointed-warming default for sampled specs and the snapshot-store
    location (default ``.repro-checkpoints/``; safe to delete at any time).
``REPRO_CHECKPOINT_SHARDS``
    Trace chunks per checkpoint-generation chain (see
    :func:`repro.sampling.checkpoints.plan_shard_jobs`).  Unset or ``0``
    sizes shards from the worker count; a pure execution knob — stitched
    sharded generation is bit-identical to the single pass.
``REPRO_RETRIES`` / ``REPRO_JOB_TIMEOUT`` / ``REPRO_SUPERVISE`` /
``REPRO_FAULT_PLAN``
    Failure-semantics knobs (retry budget, per-job deadline, supervision
    escape hatch, deterministic fault injection) — all execution-only,
    never part of cache keys; see :mod:`repro.exec.resilience`.
``REPRO_BACKEND`` / ``REPRO_SPOOL_DIR``
    Execution-backend selection (``serial`` / ``supervised-pool`` /
    ``local-cluster``; unset = auto) and the cluster spool location — see
    :mod:`repro.exec.backend`.  Execution-only like every scheduling
    knob: every backend is bit-identical, so neither value enters a
    cache or snapshot key.
``REPRO_KERNEL``
    Detailed-core kernel (``object`` / ``vector`` / ``compiled`` /
    ``auto``; see :mod:`repro.pipeline.vector`).  Execution-only —
    every kernel is bit-identical, so the knob never enters a cache or
    snapshot key.  The *effective* kernel is reported as ``kernel`` in
    :attr:`ExperimentEngine.last_run_stats` on every run.
``REPRO_PROFILE``
    Per-worker profiling: ``1`` (default ``.repro-profile/``) or a
    directory path.  Each engine run that simulates anything gets a
    run-scoped subdirectory of per-job ``cProfile`` dumps
    (``job-<pid>-<n>.pstats``), and the aggregated top cumulative
    hotspots land under ``last_run_stats["profile"]``.  Execution-only:
    profiling observes, it never changes a simulated statistic.

Every fan-out — this engine's job pass *and* the sharded
checkpoint-generation stage — runs through one dispatcher seam
(:func:`repro.exec.dispatch.dispatch`) over a pluggable
:class:`~repro.exec.backend.ExecutionBackend`.  The default pool backend
runs **supervised** (see :mod:`repro.exec.resilience`): per-job
deadlines, crash detection, retry with backoff, pool self-healing, and
degradation to in-process serial execution — a sweep completes or raises
a structured :class:`~repro.exec.resilience.ExperimentFailure`, it never
hangs and never silently drops jobs; that contract now holds on *every*
backend, serial included.  Scheduler observability (``backend``,
``queue_depth_peak``, ``inflight_peak``, ``steals``,
``dispatch_overhead_ns``) lands in :attr:`ExperimentEngine.last_run_stats`
on every run.  Malformed ``REPRO_*`` knobs fail engine construction fast
with a one-line :class:`~repro.exec.resilience.EnvKnobError`.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.exec import resilience as _resilience
from repro.exec.backend import DispatchJob, resolve_backend
from repro.exec.cache import ResultCache, generic_key, job_key
from repro.exec.dispatch import dispatch
from repro.exec.jobs import JobSpec, run_job
from repro.exec.resilience import EnvKnobError, ExperimentFailure

#: The scheduler-observability keys every run folds into
#: ``last_run_stats`` (zeroed when nothing needed dispatching, so tooling
#: needs no schema probe).
_SCHEDULER_KEYS = ("backend", "queue_depth_peak", "inflight_peak",
                   "steals", "dispatch_overhead_ns")


def _validate_chunksize(chunksize) -> Optional[int]:
    """Reject malformed ``chunksize`` on every path, parallel or not.

    The serial path used to silently ignore the parameter; now a bad
    value fails identically everywhere, and backends that cannot batch
    document the (validated) hint as a no-op on their capabilities
    descriptor (``supports_chunksize``).
    """
    if chunksize is None:
        return None
    if isinstance(chunksize, bool) or not isinstance(chunksize, int):
        raise ValueError(
            f"chunksize must be a positive integer or None "
            f"(got {chunksize!r})")
    if chunksize < 1:
        raise ValueError(
            f"chunksize must be >= 1 (got {chunksize})")
    return chunksize


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's CPUs even when the process is
    pinned to fewer (cgroup cpusets, ``taskset``, affinity-restricted CI
    runners), and sizing a pool from it oversubscribes the restricted set.
    Prefer the scheduling affinity where the platform exposes it.
    """
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            return len(sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1.

    Any value <= 0 (explicit or from the environment) means "all CPUs" —
    the CPUs available to this process (:func:`available_cpus`), not the
    machine total.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise EnvKnobError(
                    f"REPRO_JOBS must be an integer (got {env!r}); "
                    "use 0 or a negative value for \"all CPUs\"") from None
        else:
            jobs = 1
    if jobs <= 0:
        jobs = available_cpus()
    return jobs


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip() != "0"


class ExperimentEngine:
    """Runs simulation job lists with caching and process fan-out."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Union[None, bool, ResultCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 checkpoint_dir: Optional[os.PathLike] = None) -> None:
        # Fail fast on malformed REPRO_* knobs — one actionable line at
        # construction beats a deep traceback mid-sweep (or worse, inside
        # a pool worker).
        _resilience.validate_environment()
        self.jobs = resolve_jobs(jobs)
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache is False:
            self.cache = None
        elif cache is True or cache_dir is not None or _cache_enabled():
            # An explicit cache_dir is an explicit opt-in, overriding the
            # REPRO_CACHE environment switch.
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        #: Checkpoint-store location for sampled specs that resolve to
        #: checkpointed warming (None = REPRO_CHECKPOINT_DIR / default).
        #: Whether checkpointing is *used* is a property of the settings,
        #: not of the engine, so every execution path resolves it the same
        #: way and stays bit-identical.
        self.checkpoint_dir = checkpoint_dir
        #: Statistics of the most recent :meth:`run` call.
        self.last_run_stats: Dict[str, int] = {}
        self._checkpoint_stats: Dict[str, int] = {}
        self._active_checkpoint_dir: Optional[str] = None

    @classmethod
    def from_settings(cls, settings, jobs: Optional[int] = None,
                      cache: Union[None, bool, ResultCache] = None,
                      cache_dir: Optional[os.PathLike] = None,
                      checkpoint_dir: Optional[os.PathLike] = None) -> "ExperimentEngine":
        """Build an engine honouring ``settings.jobs`` (then ``REPRO_JOBS``)."""
        if jobs is None:
            jobs = getattr(settings, "jobs", None)
        return cls(jobs=jobs, cache=cache, cache_dir=cache_dir,
                   checkpoint_dir=checkpoint_dir)

    # ----------------------------------------------------------------- running --

    @staticmethod
    def _is_sampled_spec(spec) -> bool:
        """True for a base :class:`JobSpec` that names a sampled run
        (interval specs carry the plan too, but are already expanded)."""
        return (isinstance(spec, JobSpec)
                and getattr(spec.settings, "sampling", None) is not None)

    def run(self, specs: Sequence[JobSpec],
            chunksize: Optional[int] = None) -> List["RunRecord"]:  # noqa: F821
        """Execute ``specs`` and return their records in input order.

        ``chunksize`` tunes how many consecutive specs a pool worker claims
        at once; sweeps ordered workload-major benefit from a multiple of
        the per-workload group size (each worker then builds each trace
        once).  The default heuristic balances that against load balance.

        Specs whose settings carry a :class:`~repro.sampling.plan.SamplingPlan`
        are expanded into one :class:`~repro.exec.jobs.IntervalJobSpec` per
        measurement interval: the intervals of *all* sampled specs join the
        same fan-out/cache pass (each interval independently
        content-addressed on disk), and are then merged deterministically
        back into one record per original spec.
        """
        specs = list(specs)
        chunksize = _validate_chunksize(chunksize)
        # A fresh run reports only its own checkpoint work: without this
        # reset, a run with no checkpointed specs would re-report the
        # *previous* run's checkpoint_generated/reused/passes.
        self._checkpoint_stats = {}
        if any(self._is_sampled_spec(spec) for spec in specs):
            return self._run_expanding_sampled(specs, chunksize)
        return self._execute(specs, chunksize)

    def _run_expanding_sampled(self, specs: Sequence[JobSpec],
                               chunksize: Optional[int]) -> List["RunRecord"]:  # noqa: F821
        from repro.sampling.checkpoints import CheckpointStore, resolve_checkpointed
        from repro.sampling.driver import expand_sampled_spec, merge_interval_records

        flat: List = []
        layout: List[tuple] = []  # (base spec or None, start, count)
        checkpoint_dir: Optional[str] = None
        any_checkpointed = False
        for spec in specs:
            if self._is_sampled_spec(spec):
                checkpointed = resolve_checkpointed(spec.settings)
                if checkpointed:
                    any_checkpointed = True
                    if checkpoint_dir is None:
                        checkpoint_dir = str(
                            CheckpointStore(self.checkpoint_dir).directory)
                        self._active_checkpoint_dir = checkpoint_dir
                intervals = expand_sampled_spec(
                    spec, checkpointed=checkpointed,
                    checkpoint_dir=checkpoint_dir if checkpointed else None)
                layout.append((spec, len(flat), len(intervals)))
                flat.extend(intervals)
            else:
                layout.append((None, len(flat), 1))
                flat.append(spec)
        # Caller chunksize heuristics target the unexpanded grid; let the
        # default heuristic balance the (much longer) interval list instead.
        before_run = self._generate_checkpoints if any_checkpointed else None
        flat_records = self._execute(flat, None, before_run=before_run)
        results: List["RunRecord"] = []
        for base_spec, start, count in layout:
            if base_spec is None:
                results.append(flat_records[start])
            else:
                results.append(merge_interval_records(
                    base_spec, flat_records[start:start + count]))
        self.last_run_stats["sampled_specs"] = sum(
            1 for base_spec, _, _ in layout if base_spec is not None)
        return results

    def _generate_checkpoints(self, pending_specs: Sequence) -> None:
        """The checkpoint-generation stage (runs on cache-missed intervals).

        Probes the store for every (workload group, configuration) the
        pending checkpointed intervals need, then runs the generation work
        for the missing groups **sharded**: each group's pass is decomposed
        into (segment-aligned trace chunk x policy group) shard jobs
        stitched through boundary snapshots and fanned out chunk-major
        over the pool (:func:`repro.sampling.checkpoints.execute_generation`
        — bit-identical to the single pass, parallel inside a single
        workload).  Intervals served from the result cache never trigger
        generation.
        """
        from repro.sampling.checkpoints import (
            CheckpointStore,
            execute_generation,
            plan_generation,
        )

        checkpointed = [spec for spec in pending_specs
                        if getattr(spec, "checkpointed", False)]
        if not checkpointed:
            return
        store = CheckpointStore(checkpointed[0].checkpoint_dir
                                or self.checkpoint_dir)
        requests, total_identities = plan_generation(store, checkpointed)
        generated = sum(len(request.identities) for request in requests)
        self._checkpoint_stats = {
            "checkpoint_identities": total_identities,
            "checkpoint_generated": generated,
            "checkpoint_reused": total_identities - generated,
            "checkpoint_passes": len(requests),
        }
        if requests:
            self._checkpoint_stats.update(
                execute_generation(store, requests, jobs=self.jobs))

    def _execute(self, specs: List[JobSpec],
                 chunksize: Optional[int] = None,
                 before_run=None) -> List["RunRecord"]:  # noqa: F821
        """Run already-expanded specs through the cache + pool machinery.

        ``before_run`` (when given) is called with the cache-missed specs
        right before they are simulated — the hook point for the
        checkpoint-generation stage.
        """
        chunksize = _validate_chunksize(chunksize)
        self._checkpoint_stats = {}
        results: List[Optional["RunRecord"]] = [None] * len(specs)

        # Snapshot before the cache probe: quarantined blobs and
        # memory-fallback reads during lookup are part of this run's story.
        counters_before = _resilience.counters_snapshot()

        pending_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        hits = 0
        if self.cache is not None:
            for i, spec in enumerate(specs):
                keys[i] = job_key(spec)
                cached = self.cache.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    hits += 1
                else:
                    pending_indices.append(i)
        else:
            pending_indices = list(range(len(specs)))

        base_stats = {
            "total": len(specs),
            "cache_hits": hits,
            "simulated": len(pending_indices),
            "kernel": self._effective_kernel(),
        }

        workers = 0
        scheduler_sink: Dict[str, object] = {}
        profile_dir = self._begin_profile_run(bool(pending_indices))
        try:
            if pending_indices and before_run is not None:
                before_run([specs[i] for i in pending_indices])

            workers = min(self.jobs, len(pending_indices)) \
                if pending_indices else 0
            if pending_indices:
                pending_specs = [specs[i] for i in pending_indices]
                backend = resolve_backend(workers)
                if (chunksize is None and workers > 1
                        and backend.capabilities.supports_chunksize):
                    chunksize = max(1, min(16, math.ceil(
                        len(pending_specs) / (workers * 4))))
                dispatch_jobs = [
                    DispatchJob(index=position, payload=spec,
                                label=self._job_label(spec))
                    for position, spec in enumerate(pending_specs)]
                records, _stats = dispatch(
                    backend, run_job, dispatch_jobs, scope="job",
                    chunksize=chunksize, stats_sink=scheduler_sink)
            else:
                records = []
        except ExperimentFailure as failure:
            # Fail loudly *and* structuredly: the per-job report survives
            # in last_run_stats for tooling even though the run raised.
            base_stats["workers"] = max(workers, 1) if specs else 0
            base_stats["failures"] = failure.report()
            base_stats.update(_resilience.counters_delta(counters_before))
            base_stats.update(self._scheduler_stats(scheduler_sink))
            base_stats.update(self._checkpoint_stats)
            self.last_run_stats = base_stats
            raise
        except BaseException:
            # Interrupted (KeyboardInterrupt, a worker's unexpected raise
            # on the raw path): supervised/raw pools have already torn
            # their workers down; sweep the *.tmp blobs those kills may
            # have stranded so an aborted run leaks nothing.
            self._sweep_interrupted_tmp()
            raise
        finally:
            if profile_dir is not None:
                os.environ.pop("_REPRO_PROFILE_RUN", None)

        for i, record in zip(pending_indices, records):
            results[i] = record
            if self.cache is not None and keys[i] is not None:
                self.cache.put(keys[i], record)

        base_stats["workers"] = max(workers, 1) if specs else 0
        base_stats.update(_resilience.counters_delta(counters_before))
        base_stats.update(self._scheduler_stats(scheduler_sink))
        base_stats.update(self._checkpoint_stats)
        base_stats.update(self._mshr_stats(results))
        if profile_dir is not None:
            base_stats["profile"] = self._profile_stats(profile_dir)
        self.last_run_stats = base_stats
        return results  # type: ignore[return-value]

    @staticmethod
    def _effective_kernel() -> str:
        """The detailed-core kernel this run's simulations execute on.

        Resolved once per run from ``REPRO_KERNEL`` (workers inherit the
        environment, so the serial path, pool workers, and cluster
        executors all agree).  Imported lazily: the exec layer stays
        importable without the pipeline package being touched first.
        """
        from repro.pipeline.vector import resolve_kernel

        return resolve_kernel()

    # ---------------------------------------------------------------- profiling --

    _profile_seq = 0

    def _begin_profile_run(self, active: bool) -> Optional[str]:
        """Open a run-scoped profile directory when ``REPRO_PROFILE`` asks.

        Creates ``<root>/run-<stamp>-<pid>-<n>/`` and exports it as
        ``_REPRO_PROFILE_RUN`` so every :func:`~repro.exec.jobs.run_job`
        execution — in-process or in a worker spawned after this point —
        dumps its ``cProfile`` stats there.  Returns ``None`` (and sets
        nothing) when profiling is off or the run has nothing to
        simulate.
        """
        root = _resilience.resolve_profile_dir()
        if root is None or not active:
            return None
        ExperimentEngine._profile_seq += 1
        run_dir = os.path.join(
            root, time.strftime("run-%Y%m%d-%H%M%S")
            + f"-{os.getpid()}-{ExperimentEngine._profile_seq}")
        os.makedirs(run_dir, exist_ok=True)
        os.environ["_REPRO_PROFILE_RUN"] = run_dir
        return run_dir

    @staticmethod
    def _profile_stats(profile_dir: str, top: int = 10) -> Dict[str, object]:
        """Aggregate a run's per-job profile dumps into a hotspot summary.

        Merges every ``*.pstats`` file in the run directory and reports
        the ``top`` call sites by cumulative time — enough to spot the
        hotspot without leaving ``last_run_stats``; the raw dumps stay on
        disk for ``pstats``/``snakeviz``-style digging.  Best-effort: a
        torn dump (killed worker) degrades to whatever merged cleanly.
        """
        import pstats

        files = sorted(
            os.path.join(profile_dir, name)
            for name in os.listdir(profile_dir) if name.endswith(".pstats"))
        summary: Dict[str, object] = {
            "dir": profile_dir, "files": len(files), "top_cumulative": []}
        stats = None
        merged = 0
        for path in files:
            try:
                if stats is None:
                    stats = pstats.Stats(path)
                else:
                    stats.add(path)
                merged += 1
            except Exception:  # pragma: no cover - torn dump
                continue
        summary["files"] = merged
        if stats is None:
            return summary
        rows = []
        for (filename, lineno, funcname), entry in stats.stats.items():
            _cc, ncalls, _tt, cumtime = entry[:4]
            site = f"{os.path.basename(filename)}:{lineno}({funcname})"
            rows.append((cumtime, ncalls, site))
        rows.sort(key=lambda row: (-row[0], row[2]))
        summary["top_cumulative"] = [
            {"site": site, "cumtime_s": round(cumtime, 6), "calls": ncalls}
            for cumtime, ncalls, site in rows[:top]]
        return summary

    def _scheduler_stats(self, sink: Dict[str, object]) -> Dict[str, object]:
        """The dispatcher's observability keys, always present.

        When nothing needed dispatching the counters are zero and
        ``backend`` names what *would* have run (the forced
        ``REPRO_BACKEND`` choice, else serial — a zero-job fan-out).
        """
        if sink:
            return {key: sink[key] for key in _SCHEDULER_KEYS}
        name = _resilience.resolve_backend_name() or "serial"
        stats: Dict[str, object] = dict.fromkeys(_SCHEDULER_KEYS, 0)
        stats["backend"] = name
        return stats

    @staticmethod
    def _mshr_stats(records) -> Dict[str, int]:
        """Aggregate non-blocking-hierarchy counters over a run's records.

        Zero-valued (with ``mshr_jobs == 0``) when no job modelled MSHRs —
        the counters are always present so tooling reading
        ``last_run_stats`` needs no schema probe.
        """
        totals = {"mshr_jobs": 0, "mshr_demand_misses": 0,
                  "mshr_misses_coalesced": 0, "mshr_stall_cycles": 0,
                  "mshr_prefetch_issued": 0, "mshr_prefetch_useful": 0}
        for record in records:
            stats = getattr(getattr(record, "result", None), "stats", None)
            if stats is None or not getattr(stats, "mshr_modeled", 0):
                continue
            totals["mshr_jobs"] += 1
            totals["mshr_demand_misses"] += stats.mshr_demand_misses
            totals["mshr_misses_coalesced"] += stats.misses_coalesced
            totals["mshr_stall_cycles"] += stats.mshr_stall_cycles
            totals["mshr_prefetch_issued"] += stats.prefetch_issued
            totals["mshr_prefetch_useful"] += stats.prefetch_useful
        return totals

    @staticmethod
    def _job_label(spec) -> str:
        label = f"{spec.workload}/{spec.config_name}"
        interval = getattr(spec, "interval_index", None)
        return label if interval is None else f"{label}#{interval}"

    def _sweep_interrupted_tmp(self) -> None:
        """Remove fresh ``*.tmp`` blobs after an interrupt killed writers.

        Only called on the engine's abort path: the run is dying, its
        workers are already gone, so every temp file in its stores is
        either this run's stranded write or fair game for the stale sweep
        anyway.  Never raises.
        """
        stores = []
        if self.cache is not None:
            stores.append(self.cache)
        if self._active_checkpoint_dir is not None:
            from repro.sampling.checkpoints import CheckpointStore

            stores.append(CheckpointStore(self._active_checkpoint_dir))
        for store in stores:
            try:
                store.sweep_stale_tmp(0.0)
            except Exception:  # pragma: no cover - best effort
                pass

    # ---------------------------------------------------------------- memoizing --

    def cached(self, tag: str, payload, compute):
        """Memoise an arbitrary computation through the result cache.

        Used by analytic artifacts (Table 2) that are cheap but still worth
        keying so the trajectory tooling can tell whether anything changed.
        Falls back to calling ``compute()`` directly when caching is off.
        """
        if self.cache is None:
            return compute()
        key = generic_key(tag, payload)
        value = self.cache.get(key)
        if value is None:
            value = compute()
            self.cache.put(key, value)
        return value

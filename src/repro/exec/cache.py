"""Content-addressed on-disk memoization of simulation results.

Each cache entry is one pickled value stored under
``<cache dir>/<sha256 key>.pkl``.  Keys are derived from everything that can
change a result:

* the trace identity ``(workload, instructions, seed)`` plus the
  workload-generator source fingerprint (together: a trace fingerprint),
* the configuration name and predictor overrides,
* the semantic fields of :class:`~repro.harness.runner.ExperimentSettings`
  (the execution-only ``jobs`` knob is excluded), and
* the simulator source fingerprint.

The cache directory defaults to ``.repro-cache/`` in the current working
directory and can be moved with the ``REPRO_CACHE_DIR`` environment
variable.  Clearing it is always safe (``ResultCache.clear()`` or simply
``rm -rf .repro-cache/``); entries are re-created on demand.

Integrity (PR 6): every blob is framed as ``magic || sha256(payload) ||
payload`` and the checksum is verified on read, so a truncated write, a
bit-rotted disk block, or torn concurrent I/O can never deserialise into a
silently-wrong result — a damaged blob is **quarantined** (moved into a
``quarantine/`` subdirectory, invisible to lookups, counted in the
resilience counters) and the entry is recomputed transparently.  Writes
that fail at the OS level (``ENOSPC``, read-only filesystems, vanished
mounts) degrade the directory to a bounded in-memory fallback for the rest
of the process: sweeps complete with cache semantics intact, only
persistence is lost.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Set

from repro.exec import resilience as _resilience
from repro.exec.fingerprint import simulator_fingerprint, workload_fingerprint

#: Bumped when the pickled payload layout changes incompatibly.
#: v2: blobs carry the integrity frame (magic + SHA-256 content checksum),
#: so pre-frame entries — which would all fail verification — are keyed
#: away instead of mass-quarantined on upgrade.
CACHE_SCHEMA_VERSION = 2

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Settings fields that steer *execution*, not simulation semantics
#: (``checkpoint_shards`` only changes *how* bit-identical snapshots are
#: generated, never what any job computes).
_EXECUTION_ONLY_FIELDS = ("jobs", "checkpoint_shards")

#: Age beyond which an orphaned ``*.tmp`` blob is certainly not a write in
#: flight (entries are written in one go; a healthy write lives milliseconds).
_TMP_STALE_SECONDS = 3600.0

#: Grace period for :meth:`ResultCache.clear`'s stray sweep: long enough
#: that a concurrent writer in another process is never raced between
#: ``mkstemp`` and ``os.replace``, short enough that an explicit clear
#: leaves no meaningful garbage behind.
_TMP_CLEAR_GRACE_SECONDS = 60.0

#: Directories already swept for stale temp files by this process — the
#: sweep is opportunistic hygiene, not per-construction work (stores are
#: constructed once per job in pool workers).
_SWEPT_DIRS: Set[str] = set()

#: Settings fields whose raw value may mean "environment default" and is
#: therefore resolved before keying: ``checkpoints`` becomes the effective
#: ``checkpointed`` flag stamped on interval specs (see :func:`job_key`), so
#: two runs that resolve differently never share an entry and two spellings
#: of the same resolution never miss.
_RESOLVED_FIELDS = ("checkpoints",)

#: Integrity-frame magic: a blob is ``magic || sha256(payload) || payload``.
_BLOB_MAGIC = b"RPRBLOB2"
_DIGEST_BYTES = hashlib.sha256().digest_size
_FRAME_HEADER_BYTES = len(_BLOB_MAGIC) + _DIGEST_BYTES

#: Subdirectory damaged blobs are moved into (``*.pkl`` lookups never
#: recurse, so quarantined blobs are invisible; kept for post-mortems,
#: emptied by :meth:`ResultCache.clear`).
_QUARANTINE_DIR = "quarantine"

#: Directories whose disk writes failed (``ENOSPC`` and friends): their
#: puts go to the in-memory fallback for the rest of the process.
_DEGRADED_DIRS: Set[str] = set()

#: Bounded per-directory in-memory fallback (LRU of *pickled* payloads, so
#: fallback entries keep the store's value-copy semantics — callers mutate
#: live policy objects after ``put``).  Small on purpose: it exists so a
#: sweep on a full disk finishes correctly, not to replace the disk.
_MEMORY_FALLBACK: Dict[str, "collections.OrderedDict[str, bytes]"] = {}
_MEMORY_FALLBACK_LIMIT = 64


def _frame(payload: bytes) -> bytes:
    """Wrap a pickled payload in the integrity frame."""
    return _BLOB_MAGIC + hashlib.sha256(payload).digest() + payload


def _unframe(blob: bytes) -> bytes:
    """Verify and strip the integrity frame; raises ``ValueError`` on any
    damage (wrong magic, short read, checksum mismatch)."""
    if len(blob) < _FRAME_HEADER_BYTES or not blob.startswith(_BLOB_MAGIC):
        raise ValueError("blob is not integrity-framed")
    payload = blob[_FRAME_HEADER_BYTES:]
    digest = blob[len(_BLOB_MAGIC):_FRAME_HEADER_BYTES]
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError("blob checksum mismatch")
    return payload


def _canonical(obj: Any) -> Any:
    """JSON-able canonical form of a (possibly nested) config dataclass."""
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj):
        data = dataclasses.asdict(obj)
        for name in _EXECUTION_ONLY_FIELDS + _RESOLVED_FIELDS:
            data.pop(name, None)
        return data
    return obj


def job_key(spec: "JobSpec") -> str:  # noqa: F821 - typing only
    """Content-addressed cache key for one job spec.

    Accepts both base :class:`~repro.exec.jobs.JobSpec` and per-interval
    :class:`~repro.exec.jobs.IntervalJobSpec` (whose key additionally
    covers the interval index; the sampling plan itself is part of the
    settings, so any plan change invalidates every interval).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "workload": spec.workload,
        "config": spec.config_name,
        "settings": _canonical(spec.settings),
        "predictors": _canonical(spec.predictors),
        "trace_sources": workload_fingerprint(),
        "simulator_sources": simulator_fingerprint(),
    }
    interval_index = getattr(spec, "interval_index", None)
    if interval_index is not None:
        payload["interval_index"] = interval_index
    # Checkpointed warming changes the simulated result (full-history warm
    # state instead of bounded warming), so the *resolved* flag is part of
    # the key; the store location is not (content-addressed snapshots are
    # location-independent).  Omitted when False so every pre-checkpoint
    # cache entry stays valid.
    if getattr(spec, "checkpointed", False):
        payload["checkpointed"] = True
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def generic_key(tag: str, payload: Any) -> str:
    """Cache key for non-simulation artifacts (e.g. the Table 2 model)."""
    blob = json.dumps({"schema": CACHE_SCHEMA_VERSION, "tag": tag,
                       "payload": _canonical(payload)},
                      sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Pickle-per-entry on-disk cache with atomic writes.

    Interrupted writers (a pool worker SIGKILLed mid-:meth:`put`) can strand
    ``*.tmp`` blobs that no ``except`` block ever sees; left alone they
    accumulate forever and get persisted by CI's ``actions/cache``.  They
    are invisible to lookups and :meth:`__len__` (entries are ``*.pkl``)
    and are swept when demonstrably stale — so a live writer in another
    process is never raced — opportunistically on first construction per
    directory per process, and with a much shorter grace by :meth:`clear`.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory
                              or os.environ.get("REPRO_CACHE_DIR")
                              or DEFAULT_CACHE_DIR)
        key = str(self.directory)
        if key not in _SWEPT_DIRS:
            _SWEPT_DIRS.add(key)
            self.sweep_stale_tmp()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def sweep_stale_tmp(self,
                        max_age_seconds: float = _TMP_STALE_SECONDS) -> int:
        """Delete orphaned ``*.tmp`` blobs older than ``max_age_seconds``.

        Returns the number removed.  Deletion races (another process
        sweeping, a writer renaming) are benign and ignored.
        """
        removed = 0
        now = time.time()
        try:
            strays = list(self.directory.glob("*.tmp"))
        except OSError:
            return 0
        for path in strays:
            try:
                if now - path.stat().st_mtime >= max_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def _memory(self) -> "collections.OrderedDict[str, bytes]":
        return _MEMORY_FALLBACK.setdefault(str(self.directory),
                                           collections.OrderedDict())

    def _memory_put(self, key: str, payload: bytes) -> None:
        memory = self._memory()
        memory.pop(key, None)
        memory[key] = payload
        while len(memory) > _MEMORY_FALLBACK_LIMIT:
            memory.popitem(last=False)

    def _memory_get(self, key: str) -> Optional[Any]:
        payload = self._memory().get(key)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # pragma: no cover - payload was pickled by us
            return None

    def _quarantine(self, key: str) -> None:
        """Move a damaged blob aside (kept for post-mortems, invisible to
        lookups) and count it; on any filesystem trouble just unlink it —
        the one non-negotiable outcome is that the entry stops matching."""
        _resilience.count("blobs_quarantined")
        path = self._path(key)
        try:
            hold = self.directory / _QUARANTINE_DIR
            hold.mkdir(parents=True, exist_ok=True)
            os.replace(path, hold / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key``, or ``None`` on any miss.

        The integrity frame is verified before anything is unpickled:
        truncated writes, bit rot, and torn concurrent I/O are quarantined
        and reported as misses (the caller recomputes and repairs), never
        as errors and never as silently-wrong values.  Version skew in the
        pickled classes (a checksum-valid blob that no longer unpickles)
        is likewise a quarantined miss.
        """
        try:
            blob = self._path(key).read_bytes()
        except OSError:
            return self._memory_get(key)
        try:
            return pickle.loads(_unframe(blob))
        except Exception:
            # Frame verification and pickle.loads can raise nearly anything
            # on a damaged stream (ValueError, KeyError, TypeError, ...);
            # a damaged entry must never take a sweep down.
            self._quarantine(key)
            return self._memory_get(key)

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename; last writer wins).

        Never raises on I/O failure: a directory whose writes fail at the
        OS level (``ENOSPC``, read-only mount) degrades to the bounded
        in-memory fallback for the rest of the process — the run completes
        with cache semantics intact, only persistence is lost.  (An
        interrupt such as ``KeyboardInterrupt`` still propagates, after
        removing the partial temp file.)
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fault = None
        plan = _resilience.current_fault_plan()
        if plan is not None:
            fault = plan.blob_fault(key)
        if fault == "write_error":
            # An injected ENOSPC: served from memory like the real thing,
            # but without poisoning the directory for subsequent puts
            # (real degradation is per-directory; injection is per-key).
            _resilience.count("injected_write_errors")
            self._memory_put(key, payload)
            return
        if str(self.directory) in _DEGRADED_DIRS:
            self._memory_put(key, payload)
            return
        blob = _frame(payload)
        if fault == "corrupt_blob":
            _resilience.count("injected_corrupt_blobs")
            index = _FRAME_HEADER_BYTES + len(payload) // 2
            blob = blob[:index] + bytes([blob[index] ^ 0xFF]) + blob[index + 1:]
        elif fault == "truncate_blob":
            _resilience.count("injected_truncated_blobs")
            blob = blob[:max(1, len(blob) // 2)]
        tmp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self._path(key))
        except FileNotFoundError:
            # The temp file (or the directory) vanished under us — another
            # process's interrupt sweep or an aggressive clear.  A lost
            # best-effort write, not a broken disk: don't degrade, the
            # entry is simply recomputed by whoever needs it next.
            _resilience.count("store_lost_writes")
        except OSError:
            # ENOSPC and friends: count it, degrade this directory to the
            # in-memory fallback, and keep the (uncorrupted) value — the
            # sweep must finish even when the disk will not cooperate.
            _resilience.count("store_write_errors")
            _DEGRADED_DIRS.add(str(self.directory))
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self._memory_put(key, payload)
        except BaseException:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterable[Path]:
        try:
            return list(self.directory.glob("*.pkl"))
        except OSError:
            return []

    def discard(self, key: str) -> bool:
        """Delete one entry (used for transient blobs such as the sharded
        generation's boundary handoffs); missing entries are not an error."""
        dropped = self._memory().pop(key, None) is not None
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return dropped

    def clear(self) -> int:
        """Delete every cache entry and stale stray temp file; returns the
        number of entries removed.

        The stray sweep keeps a short grace period (unlike entries, a
        ``*.tmp`` seconds old may be another process's write in flight,
        and unlinking it mid-``put`` would crash that writer's
        ``os.replace``); a full reset of everything regardless of age is
        ``rm -rf`` of the directory, which is always safe too.
        """
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._memory().clear()
        try:
            for path in (self.directory / _QUARANTINE_DIR).glob("*.pkl"):
                path.unlink()
        except OSError:
            pass
        self.sweep_stale_tmp(_TMP_CLEAR_GRACE_SECONDS)
        return removed

"""Content-addressed on-disk memoization of simulation results.

Each cache entry is one pickled value stored under
``<cache dir>/<sha256 key>.pkl``.  Keys are derived from everything that can
change a result:

* the trace identity ``(workload, instructions, seed)`` plus the
  workload-generator source fingerprint (together: a trace fingerprint),
* the configuration name and predictor overrides,
* the semantic fields of :class:`~repro.harness.runner.ExperimentSettings`
  (the execution-only ``jobs`` knob is excluded), and
* the simulator source fingerprint.

The cache directory defaults to ``.repro-cache/`` in the current working
directory and can be moved with the ``REPRO_CACHE_DIR`` environment
variable.  Clearing it is always safe (``ResultCache.clear()`` or simply
``rm -rf .repro-cache/``); entries are re-created on demand.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.exec.fingerprint import simulator_fingerprint, workload_fingerprint

#: Bumped when the pickled payload layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Settings fields that steer *execution*, not simulation semantics.
_EXECUTION_ONLY_FIELDS = ("jobs",)

#: Settings fields whose raw value may mean "environment default" and is
#: therefore resolved before keying: ``checkpoints`` becomes the effective
#: ``checkpointed`` flag stamped on interval specs (see :func:`job_key`), so
#: two runs that resolve differently never share an entry and two spellings
#: of the same resolution never miss.
_RESOLVED_FIELDS = ("checkpoints",)


def _canonical(obj: Any) -> Any:
    """JSON-able canonical form of a (possibly nested) config dataclass."""
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj):
        data = dataclasses.asdict(obj)
        for name in _EXECUTION_ONLY_FIELDS + _RESOLVED_FIELDS:
            data.pop(name, None)
        return data
    return obj


def job_key(spec: "JobSpec") -> str:  # noqa: F821 - typing only
    """Content-addressed cache key for one job spec.

    Accepts both base :class:`~repro.exec.jobs.JobSpec` and per-interval
    :class:`~repro.exec.jobs.IntervalJobSpec` (whose key additionally
    covers the interval index; the sampling plan itself is part of the
    settings, so any plan change invalidates every interval).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "workload": spec.workload,
        "config": spec.config_name,
        "settings": _canonical(spec.settings),
        "predictors": _canonical(spec.predictors),
        "trace_sources": workload_fingerprint(),
        "simulator_sources": simulator_fingerprint(),
    }
    interval_index = getattr(spec, "interval_index", None)
    if interval_index is not None:
        payload["interval_index"] = interval_index
    # Checkpointed warming changes the simulated result (full-history warm
    # state instead of bounded warming), so the *resolved* flag is part of
    # the key; the store location is not (content-addressed snapshots are
    # location-independent).  Omitted when False so every pre-checkpoint
    # cache entry stays valid.
    if getattr(spec, "checkpointed", False):
        payload["checkpointed"] = True
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def generic_key(tag: str, payload: Any) -> str:
    """Cache key for non-simulation artifacts (e.g. the Table 2 model)."""
    blob = json.dumps({"schema": CACHE_SCHEMA_VERSION, "tag": tag,
                       "payload": _canonical(payload)},
                      sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Pickle-per-entry on-disk cache with atomic writes."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory
                              or os.environ.get("REPRO_CACHE_DIR")
                              or DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key``, or ``None`` on any miss.

        Unreadable or corrupt entries (interrupted writes, version skew in
        pickled classes) are treated as misses, never as errors.
        """
        try:
            blob = self._path(key).read_bytes()
            return pickle.loads(blob)
        except Exception:
            # pickle.loads can raise nearly anything on a truncated or
            # bit-rotted stream (ValueError, KeyError, TypeError, ...);
            # a damaged entry must never take a sweep down.
            return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename; last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterable[Path]:
        try:
            return list(self.directory.glob("*.pkl"))
        except OSError:
            return []

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

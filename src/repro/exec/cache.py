"""Content-addressed on-disk memoization of simulation results.

Each cache entry is one pickled value stored under
``<cache dir>/<sha256 key>.pkl``.  Keys are derived from everything that can
change a result:

* the trace identity ``(workload, instructions, seed)`` plus the
  workload-generator source fingerprint (together: a trace fingerprint),
* the configuration name and predictor overrides,
* the semantic fields of :class:`~repro.harness.runner.ExperimentSettings`
  (the execution-only ``jobs`` knob is excluded), and
* the simulator source fingerprint.

The cache directory defaults to ``.repro-cache/`` in the current working
directory and can be moved with the ``REPRO_CACHE_DIR`` environment
variable.  Clearing it is always safe (``ResultCache.clear()`` or simply
``rm -rf .repro-cache/``); entries are re-created on demand.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Iterable, Optional, Set

from repro.exec.fingerprint import simulator_fingerprint, workload_fingerprint

#: Bumped when the pickled payload layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Settings fields that steer *execution*, not simulation semantics
#: (``checkpoint_shards`` only changes *how* bit-identical snapshots are
#: generated, never what any job computes).
_EXECUTION_ONLY_FIELDS = ("jobs", "checkpoint_shards")

#: Age beyond which an orphaned ``*.tmp`` blob is certainly not a write in
#: flight (entries are written in one go; a healthy write lives milliseconds).
_TMP_STALE_SECONDS = 3600.0

#: Grace period for :meth:`ResultCache.clear`'s stray sweep: long enough
#: that a concurrent writer in another process is never raced between
#: ``mkstemp`` and ``os.replace``, short enough that an explicit clear
#: leaves no meaningful garbage behind.
_TMP_CLEAR_GRACE_SECONDS = 60.0

#: Directories already swept for stale temp files by this process — the
#: sweep is opportunistic hygiene, not per-construction work (stores are
#: constructed once per job in pool workers).
_SWEPT_DIRS: Set[str] = set()

#: Settings fields whose raw value may mean "environment default" and is
#: therefore resolved before keying: ``checkpoints`` becomes the effective
#: ``checkpointed`` flag stamped on interval specs (see :func:`job_key`), so
#: two runs that resolve differently never share an entry and two spellings
#: of the same resolution never miss.
_RESOLVED_FIELDS = ("checkpoints",)


def _canonical(obj: Any) -> Any:
    """JSON-able canonical form of a (possibly nested) config dataclass."""
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj):
        data = dataclasses.asdict(obj)
        for name in _EXECUTION_ONLY_FIELDS + _RESOLVED_FIELDS:
            data.pop(name, None)
        return data
    return obj


def job_key(spec: "JobSpec") -> str:  # noqa: F821 - typing only
    """Content-addressed cache key for one job spec.

    Accepts both base :class:`~repro.exec.jobs.JobSpec` and per-interval
    :class:`~repro.exec.jobs.IntervalJobSpec` (whose key additionally
    covers the interval index; the sampling plan itself is part of the
    settings, so any plan change invalidates every interval).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "workload": spec.workload,
        "config": spec.config_name,
        "settings": _canonical(spec.settings),
        "predictors": _canonical(spec.predictors),
        "trace_sources": workload_fingerprint(),
        "simulator_sources": simulator_fingerprint(),
    }
    interval_index = getattr(spec, "interval_index", None)
    if interval_index is not None:
        payload["interval_index"] = interval_index
    # Checkpointed warming changes the simulated result (full-history warm
    # state instead of bounded warming), so the *resolved* flag is part of
    # the key; the store location is not (content-addressed snapshots are
    # location-independent).  Omitted when False so every pre-checkpoint
    # cache entry stays valid.
    if getattr(spec, "checkpointed", False):
        payload["checkpointed"] = True
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def generic_key(tag: str, payload: Any) -> str:
    """Cache key for non-simulation artifacts (e.g. the Table 2 model)."""
    blob = json.dumps({"schema": CACHE_SCHEMA_VERSION, "tag": tag,
                       "payload": _canonical(payload)},
                      sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Pickle-per-entry on-disk cache with atomic writes.

    Interrupted writers (a pool worker SIGKILLed mid-:meth:`put`) can strand
    ``*.tmp`` blobs that no ``except`` block ever sees; left alone they
    accumulate forever and get persisted by CI's ``actions/cache``.  They
    are invisible to lookups and :meth:`__len__` (entries are ``*.pkl``)
    and are swept when demonstrably stale — so a live writer in another
    process is never raced — opportunistically on first construction per
    directory per process, and with a much shorter grace by :meth:`clear`.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory
                              or os.environ.get("REPRO_CACHE_DIR")
                              or DEFAULT_CACHE_DIR)
        key = str(self.directory)
        if key not in _SWEPT_DIRS:
            _SWEPT_DIRS.add(key)
            self.sweep_stale_tmp()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def sweep_stale_tmp(self,
                        max_age_seconds: float = _TMP_STALE_SECONDS) -> int:
        """Delete orphaned ``*.tmp`` blobs older than ``max_age_seconds``.

        Returns the number removed.  Deletion races (another process
        sweeping, a writer renaming) are benign and ignored.
        """
        removed = 0
        now = time.time()
        try:
            strays = list(self.directory.glob("*.tmp"))
        except OSError:
            return 0
        for path in strays:
            try:
                if now - path.stat().st_mtime >= max_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key``, or ``None`` on any miss.

        Unreadable or corrupt entries (interrupted writes, version skew in
        pickled classes) are treated as misses, never as errors.
        """
        try:
            blob = self._path(key).read_bytes()
            return pickle.loads(blob)
        except Exception:
            # pickle.loads can raise nearly anything on a truncated or
            # bit-rotted stream (ValueError, KeyError, TypeError, ...);
            # a damaged entry must never take a sweep down.
            return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic rename; last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterable[Path]:
        try:
            return list(self.directory.glob("*.pkl"))
        except OSError:
            return []

    def discard(self, key: str) -> bool:
        """Delete one entry (used for transient blobs such as the sharded
        generation's boundary handoffs); missing entries are not an error."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Delete every cache entry and stale stray temp file; returns the
        number of entries removed.

        The stray sweep keeps a short grace period (unlike entries, a
        ``*.tmp`` seconds old may be another process's write in flight,
        and unlinking it mid-``put`` would crash that writer's
        ``os.replace``); a full reset of everything regardless of age is
        ``rm -rf`` of the directory, which is always safe too.
        """
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.sweep_stale_tmp(_TMP_CLEAR_GRACE_SECONDS)
        return removed

"""Fault tolerance for the experiment engine and its on-disk stores.

The ROADMAP invariant — serial, parallel, cached, and checkpointed runs are
bit-identical — only means something if it survives an unhealthy machine.
This module supplies the failure semantics shared by every pool fan-out
(simulation jobs, sampling interval jobs, checkpoint shard jobs):

* **Job supervision** — :func:`run_supervised` executes a job list on a
  self-managed worker pool where every assignment carries a deadline.  A
  worker that dies (SIGKILL, OOM, a crashed C extension) or blows its
  per-job timeout is detected, killed if necessary, and respawned (pool
  self-healing); its jobs are retried with exponential backoff and
  deterministic jitter.  Past a crash-death threshold the pool is declared
  unhealthy and the surviving jobs degrade to in-process serial execution.
  A sweep therefore always either completes — bit-identically, since jobs
  are deterministic by value — or fails loudly with a structured per-job
  report (:class:`ExperimentFailure`), and never hangs while a timeout is
  configured.

* **Deterministic fault injection** — ``REPRO_FAULT_PLAN`` names exact,
  reproducible fault points (worker crashes, hangs, corrupt/truncated
  blobs, write errors) so every recovery path above is CI-exercisable;
  see :func:`parse_fault_plan` for the grammar.

* **Environment-knob validation** — every ``REPRO_*`` knob resolves
  through :class:`EnvKnobError`-raising parsers, so a malformed value
  (``REPRO_JOBS=abc``, a negative shard count) fails fast with a one-line
  actionable message instead of a deep traceback from the middle of a run.

* **Counters** — process-local resilience counters (retries, quarantined
  blobs, degradations, ...) that pool workers ship back to the supervisor
  with each result, so ``ExperimentEngine.last_run_stats`` and the
  ``BENCH_*.json`` envelopes record recovery overhead instead of silently
  absorbing it.

Environment knobs (all execution-only — none participates in result-cache
or snapshot keys, exactly like ``REPRO_JOBS`` / ``REPRO_CHECKPOINT_SHARDS``)::

    REPRO_RETRIES=N       # retries per failed job (default 2; 0 disables)
    REPRO_JOB_TIMEOUT=S   # per-job deadline in seconds on the pool path
                          # (default 3600; 0 disables deadlines)
    REPRO_SUPERVISE=0     # escape hatch: raw multiprocessing.Pool fan-out
                          # (no retries, no timeouts; used by the overhead
                          # benchmark as the A/B baseline)
    REPRO_FAULT_PLAN=...  # deterministic fault injection, e.g.
                          # "worker_crash@job:3,corrupt_blob@p=0.1,hang@shard:1"
    REPRO_KERNEL=...      # detailed-core kernel: object | vector | compiled
                          # | auto (default; every kernel is bit-identical)
    REPRO_PROFILE=...     # when set, jobs run under cProfile and dump
                          # per-worker stats into a run-scoped directory

What is (and is not) retried: **crashes** (a worker process dying) and
**hangs** (a per-job deadline expiring) are retried — they are machine
failures, and the job is deterministic, so a retry is safe and
bit-identical.  **Exceptions raised by the job itself** are never retried:
a deterministic job that raised once will raise again, so it is reported
immediately as a permanent failure.  In-process (serial or degraded)
execution has no preemptive deadline — only pool workers can be killed —
which is why degradation is triggered by crash deaths, never by timeouts.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import itertools
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BACKEND_NAMES",
    "EnvKnobError",
    "ExperimentFailure",
    "FaultClause",
    "FaultPlan",
    "JobFailure",
    "KERNEL_NAMES",
    "backoff_delay",
    "count",
    "counters_delta",
    "counters_snapshot",
    "current_fault_plan",
    "in_pool_worker",
    "mark_pool_worker",
    "merge_counters",
    "parse_fault_plan",
    "reset_counters",
    "resolve_backend_name",
    "resolve_job_timeout",
    "resolve_kernel_name",
    "resolve_profile_dir",
    "resolve_retries",
    "resolve_spool_dir",
    "run_supervised",
    "supervised_events",
    "supervision_enabled",
    "validate_environment",
]


# ------------------------------------------------------------- env knobs --

class EnvKnobError(ValueError):
    """A malformed ``REPRO_*`` environment knob.

    The message is a single actionable line (knob name, offending value,
    what to use instead); entry points print it and exit instead of dumping
    a traceback from the middle of a sweep.
    """


def _env_int(name: str, default: int, hint: str,
             minimum: Optional[int] = None) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(
            f"{name} must be an integer (got {raw!r}); {hint}") from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(
            f"{name} must be >= {minimum} (got {value}); {hint}")
    return value


def _env_float(name: str, default: float, hint: str,
               minimum: Optional[float] = None) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvKnobError(
            f"{name} must be a number (got {raw!r}); {hint}") from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(
            f"{name} must be >= {minimum} (got {value:g}); {hint}")
    return value


#: Default retries per failed (crashed or timed-out) job.
DEFAULT_RETRIES = 2

#: Default per-job deadline on the pool path, in seconds.  Generous: a
#: checkpoint shard job legitimately waits up to
#: :data:`repro.sampling.checkpoints._BOUNDARY_WAIT_SECONDS` for its stitch
#: handoff before walking back, and the deadline must never fire on a
#: healthy machine.  Chaos tests shrink it explicitly.
DEFAULT_JOB_TIMEOUT_SECONDS = 3600.0


def resolve_retries() -> int:
    """Retries per failed job: ``REPRO_RETRIES``, default 2, ``>= 0``."""
    return _env_int("REPRO_RETRIES", DEFAULT_RETRIES,
                    "use 0 to disable retries", minimum=0)


def resolve_job_timeout() -> float:
    """Per-job deadline in seconds: ``REPRO_JOB_TIMEOUT``, default 3600.

    ``0`` disables deadlines (crash detection and retries stay active).
    """
    return _env_float("REPRO_JOB_TIMEOUT", DEFAULT_JOB_TIMEOUT_SECONDS,
                      "seconds per job; use 0 to disable deadlines",
                      minimum=0.0)


def supervision_enabled() -> bool:
    """Whether pool fan-outs run supervised (default) or raw.

    ``REPRO_SUPERVISE=0`` is the escape hatch back to a plain
    ``multiprocessing.Pool`` — no retries, no deadlines, no failure report
    — kept for A/B overhead measurement and emergency debugging.
    """
    return os.environ.get("REPRO_SUPERVISE", "1").strip() != "0"


#: The in-tree execution backends (see :mod:`repro.exec.backend`).
BACKEND_NAMES = ("serial", "supervised-pool", "local-cluster")


def resolve_backend_name() -> Optional[str]:
    """The forced execution backend (``REPRO_BACKEND``), or ``None``.

    ``None`` means *auto*: the engine picks ``serial`` for one-worker runs
    and ``supervised-pool`` otherwise.  Purely an execution knob — every
    backend is bit-identical on every workload — so it never participates
    in result-cache or snapshot keys.
    """
    raw = os.environ.get("REPRO_BACKEND", "").strip()
    if not raw:
        return None
    if raw not in BACKEND_NAMES:
        raise EnvKnobError(
            f"REPRO_BACKEND must be one of {', '.join(BACKEND_NAMES)} "
            f"(got {raw!r}); unset it to let the engine choose")
    return raw


def resolve_spool_dir() -> Optional[str]:
    """Root for local-cluster job spools (``REPRO_SPOOL_DIR``), or ``None``.

    ``None`` means the system temp directory.  Each cluster submission
    creates (and always removes) its own unique spool underneath.
    """
    raw = os.environ.get("REPRO_SPOOL_DIR", "").strip()
    return raw or None


#: The in-tree detailed-core kernels (see :mod:`repro.pipeline.vector`).
KERNEL_NAMES = ("object", "vector", "compiled")


def resolve_kernel_name() -> Optional[str]:
    """The forced detailed-core kernel (``REPRO_KERNEL``), or ``None``.

    ``None`` means *auto*: the compiled kernel when its extension is built,
    the pure-Python vector kernel otherwise.  Purely an execution knob —
    every kernel is bit-identical on every workload (golden- and
    property-tested) — so it never participates in result-cache or
    snapshot keys.
    """
    raw = os.environ.get("REPRO_KERNEL", "").strip()
    if not raw or raw == "auto":
        return None
    if raw not in KERNEL_NAMES:
        raise EnvKnobError(
            f"REPRO_KERNEL must be one of {', '.join(KERNEL_NAMES)}, or "
            f"auto (got {raw!r}); unset it to let the core choose")
    return raw


def resolve_profile_dir() -> Optional[str]:
    """Root directory for per-worker profiles (``REPRO_PROFILE``), or ``None``.

    ``None`` (unset, empty, or ``0``) disables profiling.  ``1`` profiles
    into the default ``.repro-profile/``; any other value is the directory
    itself.  When enabled, every job runs under :mod:`cProfile`, each
    worker dumps its stats files into a run-scoped subdirectory, and
    ``ExperimentEngine.last_run_stats`` reports the top cumulative
    hotspots — so the next performance PR starts from data, not guesses.
    """
    raw = os.environ.get("REPRO_PROFILE", "").strip()
    if not raw or raw == "0":
        return None
    if raw == "1":
        return ".repro-profile"
    if os.path.isfile(raw):
        raise EnvKnobError(
            f"REPRO_PROFILE must be a directory path (got existing file "
            f"{raw!r}); use 1 for the default .repro-profile/")
    return raw


def validate_environment() -> Dict[str, Any]:
    """Resolve every execution-affecting ``REPRO_*`` knob, failing fast.

    Called once per :class:`~repro.exec.engine.ExperimentEngine`
    construction so a malformed knob surfaces before any simulation work
    starts, as one :class:`EnvKnobError` line.  Returns the resolved
    values (useful for reports and docs smoke tests).
    """
    resolved: Dict[str, Any] = {
        "jobs_env": _env_int("REPRO_JOBS", 1,
                             'use 0 or a negative value for "all CPUs"'),
        "checkpoint_shards": _env_int(
            "REPRO_CHECKPOINT_SHARDS", 0,
            "use 0 (or unset) to size shards from the worker count",
            minimum=0),
        "retries": resolve_retries(),
        "job_timeout": resolve_job_timeout(),
        "supervise": supervision_enabled(),
        "backend": resolve_backend_name(),
        "spool_dir": resolve_spool_dir(),
        "kernel": resolve_kernel_name(),
        "profile_dir": resolve_profile_dir(),
    }
    resolved["fault_plan"] = current_fault_plan()
    return resolved


# --------------------------------------------------------------- backoff --

_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 5.0


def backoff_delay(attempt: int, token: str = "") -> float:
    """Exponential backoff with deterministic jitter for retry ``attempt``.

    ``attempt`` counts failures so far (1 for the first retry).  The jitter
    is a hash of ``(token, attempt)`` — reproducible across runs (no wall
    clock, no global RNG) while still de-synchronising simultaneous
    retries of different jobs.
    """
    exponent = max(0, attempt - 1)
    base = min(_BACKOFF_CAP_SECONDS, _BACKOFF_BASE_SECONDS * (2 ** exponent))
    digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
    return base * (0.5 + 0.5 * digest[0] / 255.0)


# -------------------------------------------------------------- counters --

#: Process-local resilience counters.  Pool workers ship a delta back with
#: every result message; the supervisor merges worker deltas here, so the
#: parent's snapshot covers the whole run (and the ``BENCH_*.json``
#: envelopes record recovery overhead instead of silently absorbing it).
_COUNTERS: collections.Counter = collections.Counter()


def count(name: str, value: int = 1) -> None:
    """Increment a process-local resilience counter."""
    _COUNTERS[name] += value


def counters_snapshot() -> Dict[str, int]:
    """A copy of the process-local resilience counters."""
    return dict(_COUNTERS)


def counters_delta(before: Dict[str, int]) -> Dict[str, int]:
    """The counters accrued since ``before`` (a prior snapshot)."""
    return {name: value - before.get(name, 0)
            for name, value in _COUNTERS.items()
            if value != before.get(name, 0)}


def merge_counters(delta: Dict[str, int]) -> None:
    """Fold a worker-reported counter delta into this process's counters."""
    _COUNTERS.update(delta)


def reset_counters() -> None:
    """Zero the process-local counters (test isolation)."""
    _COUNTERS.clear()


# ------------------------------------------------------- fault injection --

#: Fault kinds injected at job boundaries (pool workers only).
JOB_FAULT_KINDS = ("worker_crash", "hang")

#: Fault kinds injected at store-blob writes (any process).
BLOB_FAULT_KINDS = ("corrupt_blob", "truncate_blob", "write_error")

#: Exit status of an injected worker crash (recognisable in waitpid logs).
_CRASH_EXIT_STATUS = 87


@dataclass(frozen=True)
class FaultClause:
    """One parsed ``kind@selector`` clause of a fault plan."""

    kind: str
    #: ``"job"`` or ``"shard"`` for job faults, ``None`` for blob faults.
    scope: Optional[str] = None
    #: Target index for job faults (the job's position in its fan-out).
    index: Optional[int] = None
    #: Per-key probability for blob faults.
    probability: Optional[float] = None
    #: How many attempts of the target job fault (``worker_crash@job:3*2``
    #: crashes the first two attempts, exercising multi-retry recovery).
    attempts: int = 1


class FaultPlan:
    """A parsed, seeded, deterministic fault-injection plan.

    Job faults fire on exact ``(scope, index, attempt)`` coordinates; blob
    faults fire per store key through a seeded hash, at most once per key
    per process (so a recompute-after-quarantine converges instead of
    corrupting its own repair forever).
    """

    def __init__(self, clauses: Sequence[FaultClause], seed: int = 0,
                 text: str = "") -> None:
        self.clauses = tuple(clauses)
        self.seed = seed
        self.text = text
        self._fired_blob_keys: set = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.text!r})"

    def job_fault(self, scope: str, index: int, attempt: int) -> Optional[str]:
        """The fault kind to inject for this job attempt, or ``None``."""
        for clause in self.clauses:
            if (clause.kind in JOB_FAULT_KINDS and clause.scope == scope
                    and clause.index == index and attempt < clause.attempts):
                return clause.kind
        return None

    def blob_fault(self, key: str) -> Optional[str]:
        """The fault kind to inject for this blob write, or ``None``.

        Deterministic per ``(seed, kind, key)``; fires at most once per key
        per process so repaired entries stay repaired.
        """
        for clause in self.clauses:
            if clause.kind not in BLOB_FAULT_KINDS or not clause.probability:
                continue
            digest = hashlib.sha256(
                f"{self.seed}:{clause.kind}:{key}".encode()).digest()
            draw = int.from_bytes(digest[:8], "big") / 2 ** 64
            if draw < clause.probability and key not in self._fired_blob_keys:
                self._fired_blob_keys.add(key)
                return clause.kind
        return None


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULT_PLAN`` string.

    Grammar (comma-separated clauses)::

        worker_crash@job:3      # crash the worker on job 3's first attempt
        worker_crash@job:3*2    # ... on its first two attempts
        hang@shard:1            # hang shard job 1 until its deadline fires
        corrupt_blob@p=0.1      # corrupt ~10% of store blobs at write time
        truncate_blob@p=0.05    # truncate (partial write) ~5% of blobs
        write_error@p=0.1       # ENOSPC-style write failure on ~10% of puts
        seed=42                 # seed for the per-key blob-fault hash

    Job selectors are ``job:<index>`` (engine fan-out order over the
    cache-missed specs) and ``shard:<index>`` (checkpoint shard-job plan
    order) — exact and reproducible whatever the pool scheduling does.
    """
    clauses: List[FaultClause] = []
    seed = 0
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("seed="):
            try:
                seed = int(part[len("seed="):])
            except ValueError:
                raise EnvKnobError(
                    f"REPRO_FAULT_PLAN seed must be an integer "
                    f"(got {part!r})") from None
            continue
        kind, sep, selector = part.partition("@")
        if not sep or kind not in JOB_FAULT_KINDS + BLOB_FAULT_KINDS:
            raise EnvKnobError(
                f"REPRO_FAULT_PLAN clause {part!r} is not "
                f"'<kind>@<selector>' with kind in "
                f"{JOB_FAULT_KINDS + BLOB_FAULT_KINDS}")
        if kind in BLOB_FAULT_KINDS:
            if not selector.startswith("p="):
                raise EnvKnobError(
                    f"REPRO_FAULT_PLAN clause {part!r}: blob faults take a "
                    f"probability selector, e.g. {kind}@p=0.1")
            try:
                probability = float(selector[2:])
            except ValueError:
                raise EnvKnobError(
                    f"REPRO_FAULT_PLAN clause {part!r}: bad probability "
                    f"{selector[2:]!r}") from None
            if not 0.0 <= probability <= 1.0:
                raise EnvKnobError(
                    f"REPRO_FAULT_PLAN clause {part!r}: probability must "
                    f"be in [0, 1]")
            clauses.append(FaultClause(kind=kind, probability=probability))
            continue
        attempts = 1
        selector, star, repeat = selector.partition("*")
        if star:
            try:
                attempts = int(repeat)
            except ValueError:
                raise EnvKnobError(
                    f"REPRO_FAULT_PLAN clause {part!r}: bad repeat "
                    f"count {repeat!r}") from None
        scope, colon, index_text = selector.partition(":")
        if not colon or scope not in ("job", "shard"):
            raise EnvKnobError(
                f"REPRO_FAULT_PLAN clause {part!r}: job faults take "
                f"'job:<index>' or 'shard:<index>' selectors")
        try:
            index = int(index_text)
        except ValueError:
            raise EnvKnobError(
                f"REPRO_FAULT_PLAN clause {part!r}: bad index "
                f"{index_text!r}") from None
        clauses.append(FaultClause(kind=kind, scope=scope, index=index,
                                   attempts=attempts))
    return FaultPlan(clauses, seed=seed, text=text)


#: Parsed plans memoized by plan text — the blob-fault fired set must
#: persist across store constructions within a process (fire once per key).
_PLAN_CACHE: Dict[str, FaultPlan] = {}


def current_fault_plan() -> Optional[FaultPlan]:
    """The active fault plan (``REPRO_FAULT_PLAN``), or ``None``."""
    text = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    if not text:
        return None
    plan = _PLAN_CACHE.get(text)
    if plan is None:
        plan = parse_fault_plan(text)
        _PLAN_CACHE[text] = plan
    return plan


#: True inside a supervised pool worker.  Process-killing job faults only
#: fire here — never in the supervisor or in degraded serial execution,
#: where a crash would take the whole engine down.
_IN_POOL_WORKER = False


def in_pool_worker() -> bool:
    """Whether this process is a supervised pool worker."""
    return _IN_POOL_WORKER


def mark_pool_worker() -> None:
    """Declare this process a pool worker (supervised or cluster).

    Called from worker entry points only; enables the process-killing job
    faults that must never fire in a supervisor or degraded-serial context.
    """
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def _maybe_inject_job_fault(scope: str, index: int, attempt: int,
                            deadline_active: bool) -> None:
    """Fire a planned job fault at this exact execution point, if any."""
    plan = current_fault_plan()
    if plan is None or not _IN_POOL_WORKER:
        return
    kind = plan.job_fault(scope, index, attempt)
    if kind == "worker_crash":
        os._exit(_CRASH_EXIT_STATUS)
    if kind == "hang":
        if not deadline_active:
            # Without a deadline nobody would ever kill this worker; a
            # self-inflicted permanent hang is worse than a skipped
            # injection.
            count("fault_hang_skipped")
            return
        while True:  # the supervisor kills this worker at the deadline
            time.sleep(60.0)


# -------------------------------------------------------------- failures --

@dataclass(frozen=True)
class JobFailure:
    """One permanently failed job (retries exhausted or non-retryable)."""

    index: int
    label: str
    kind: str  # "crash" | "timeout" | "exception"
    attempts: int
    error: str

    def describe(self) -> str:
        return (f"job {self.index} ({self.label}): {self.kind} after "
                f"{self.attempts} attempt(s) — {self.error}")


class ExperimentFailure(RuntimeError):
    """Retries exhausted: a structured per-job failure report.

    Raised by :func:`run_supervised` after every *other* job has completed,
    so a single poisoned job never discards a sweep's worth of finished
    (and cached) work.  ``failures`` lists each failed job with its cause;
    ``report()`` is the JSON-able form stored in
    ``ExperimentEngine.last_run_stats['failures']``.
    """

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = "\n".join(f"  - {failure.describe()}"
                          for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} job(s) failed permanently:\n{lines}")

    def report(self) -> List[Dict[str, Any]]:
        return [dataclasses.asdict(failure) for failure in self.failures]


# ------------------------------------------------------- supervised pool --

#: Supervisor poll cadence: an upper bound on how long a finished result,
#: a dead worker, or an expired deadline can go unnoticed.  Jobs are
#: simulations lasting seconds; 50 ms of detection latency is noise.
_POLL_SECONDS = 0.05

#: Grace given to ``terminate()`` before escalating to ``kill()``.
_TERMINATE_GRACE_SECONDS = 2.0

#: Crash deaths (not timeouts) after which the pool is declared unhealthy
#: and the surviving jobs degrade to in-process serial execution, per
#: :func:`run_supervised` call: ``max(_DEGRADE_MIN_DEATHS, workers + 1)``.
_DEGRADE_MIN_DEATHS = 3


def _pool_context():
    """The ``fork`` multiprocessing context where available (cheap worker
    start-up, inherits warm per-process memos), else the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_main(inbox, outbox, fn) -> None:
    """Supervised worker loop: one task message in, one result message out.

    A task is ``(task_id, scope, attempt, deadline_active, jobs)`` where
    ``jobs`` is a list of ``(index, payload)``.  The reply is either
    ``(task_id, "ok", [(index, result), ...], counters_delta)`` or
    ``(task_id, "error", failed_index, traceback, partial, counters_delta)``
    — exceptions never kill the worker, only crashes and kills do.
    """
    mark_pool_worker()
    while True:
        message = inbox.get()
        if message is None:
            return
        task_id, scope, attempt, deadline_active, jobs = message
        before = counters_snapshot()
        results: List[Tuple[int, Any]] = []
        error: Optional[Tuple[int, str]] = None
        for index, payload in jobs:
            _maybe_inject_job_fault(scope, index, attempt, deadline_active)
            try:
                results.append((index, fn(payload)))
            except BaseException:
                error = (index, traceback.format_exc(limit=12))
                break
        delta = counters_delta(before)
        if error is None:
            outbox.put((task_id, "ok", results, delta))
        else:
            outbox.put((task_id, "error", error[0], error[1], results, delta))


@dataclass
class _Assignment:
    task_id: int
    indices: List[int]
    attempt: int
    deadline: Optional[float]


class _Worker:
    """One supervised worker process plus its private inbox."""

    def __init__(self, ctx, outbox, fn) -> None:
        self.inbox = ctx.SimpleQueue()
        self.process = ctx.Process(target=_worker_main,
                                   args=(self.inbox, outbox, fn), daemon=True)
        self.process.start()
        self.assignment: Optional[_Assignment] = None

    def assign(self, assignment: _Assignment, scope: str,
               payloads: Sequence[Any]) -> None:
        self.assignment = assignment
        self.inbox.put((assignment.task_id, scope, assignment.attempt,
                        assignment.deadline is not None,
                        [(i, payloads[i]) for i in assignment.indices]))

    def stop(self) -> None:
        """Best-effort graceful stop (idle workers drain the ``None``)."""
        try:
            self.inbox.put(None)
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass

    def destroy(self) -> None:
        """Unconditional teardown: terminate, escalate to kill, reap."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(_TERMINATE_GRACE_SECONDS)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join()
        else:
            process.join()
        try:
            self.inbox.close()
        except (OSError, AttributeError):  # pragma: no cover
            pass


def supervised_events(fn: Callable[[Any], Any], payloads: Sequence[Any],
                      workers: int, *, scope: str = "job",
                      labels: Optional[Sequence[str]] = None,
                      chunksize: int = 1,
                      timeout: Optional[float] = None,
                      retries: Optional[int] = None,
                      degrade_after: Optional[int] = None,
                      deps: Optional[Sequence[Sequence[int]]] = None):
    """Supervised execution as a stream of scheduler events.

    The generator core of :func:`run_supervised`: yields ``("start",
    index)`` when a job is handed to a worker (or begins in-process) and
    ``("done", index, value)`` as each result lands, in completion order.
    On exhaustion it *returns* the run's resilience-counter delta (the
    ``StopIteration`` value) — or raises :class:`ExperimentFailure` after
    every other job has completed.  The event stream is what the
    :mod:`repro.exec.dispatch` layer consumes; :func:`run_supervised`
    remains the collect-everything convenience wrapper.

    ``deps`` (optional, one index sequence per job, each ``dep < index``)
    makes the dispatch-ordering contract explicit: a chunk is not handed
    to a worker until every dependency of its jobs has been *dispatched*.
    Dispatch-gating (not completion-gating) preserves the checkpoint
    chains' compose-ahead overlap — a consumer may run concurrently with
    its producer and wait in-worker for the boundary handoff — while
    turning what used to be pool-FIFO luck into an enforced invariant.

    Teardown is unconditional: leaving the generator on any path — normal
    exhaustion, ``ExperimentFailure``, ``KeyboardInterrupt`` during
    ``next()``, or an early ``close()`` — destroys every worker process.
    """
    payloads = list(payloads)
    total = len(payloads)
    if timeout is None:
        timeout = resolve_job_timeout()
    if retries is None:
        retries = resolve_retries()
    if labels is None:
        labels = [f"{scope} {i}" for i in range(total)]
    else:
        labels = list(labels)
    if deps is not None:
        deps = [tuple(job_deps) for job_deps in deps]
        for index, job_deps in enumerate(deps):
            for dep in job_deps:
                if not 0 <= dep < index:
                    raise ValueError(
                        f"job {index} depends on {dep}: dependencies must "
                        f"point at earlier jobs (topological input order)")

    done = [False] * total
    started = [False] * total       # dispatched at least once, per job
    attempts = [0] * total          # failed attempts so far, per job
    ready_at = [0.0] * total        # backoff gate, per job
    failures: List[JobFailure] = []
    failed = [False] * total
    stats: collections.Counter = collections.Counter()
    before_counters = counters_snapshot()

    chunksize = max(1, chunksize)
    queue: Deque[List[int]] = collections.deque(
        [list(range(start, min(start + chunksize, total)))
         for start in range(0, total, chunksize)])

    if degrade_after is None:
        degrade_after = max(_DEGRADE_MIN_DEATHS, workers + 1)

    def fail(index: int, kind: str, error: str) -> None:
        failed[index] = True
        failures.append(JobFailure(index=index, label=labels[index],
                                   kind=kind, attempts=attempts[index],
                                   error=error))

    def retry_or_fail(indices: List[int], kind: str, error: str) -> None:
        """Requeue a failed assignment's unfinished jobs, or fail them."""
        for index in reversed(indices):
            if done[index] or failed[index]:
                continue
            attempts[index] += 1
            if attempts[index] > retries:
                fail(index, kind, error)
                continue
            stats["job_retries"] += 1
            ready_at[index] = (time.monotonic()
                               + backoff_delay(attempts[index], labels[index]))
            # Retries go to the front as singletons: a shard-chain producer
            # must be redispatched before its consumers give up waiting.
            queue.appendleft([index])

    def run_serially(indices: Sequence[int]):
        """Degraded in-process execution (no deadline; crash faults are
        worker-only, so a planned crash cannot kill the supervisor).
        Index order respects ``deps`` because dependencies point earlier."""
        for index in indices:
            if done[index] or failed[index]:
                continue
            stats["degraded_serial_jobs"] += 1
            if not started[index]:
                started[index] = True
                yield ("start", index)
            try:
                value = fn(payloads[index])
            except Exception:
                fail(index, "exception", traceback.format_exc(limit=12))
            else:
                done[index] = True
                yield ("done", index, value)

    def blocked_on_deps(chunk: List[int]) -> bool:
        """Whether any job in ``chunk`` has an undispatched dependency."""
        if deps is None:
            return False
        return any(not (started[d] or done[d] or failed[d])
                   for i in chunk for d in deps[i])

    ctx = _pool_context()
    outbox = ctx.Queue()
    pool: List[_Worker] = []
    task_ids = itertools.count()
    degraded = False
    crash_deaths = 0

    def handle_dead_assignment(worker: _Worker, kind: str,
                               message: str) -> None:
        nonlocal crash_deaths, degraded
        assignment = worker.assignment
        worker.assignment = None
        stats["worker_crashes" if kind == "crash" else "job_timeouts"] += 1
        if kind == "crash":
            crash_deaths += 1
        retry_or_fail(assignment.indices, kind, message)
        worker.destroy()
        pool.remove(worker)
        if kind == "crash" and crash_deaths >= degrade_after:
            degraded = True
            stats["pool_degraded"] = 1
        elif queue or any(w.assignment for w in pool) or not pool:
            stats["pool_respawns"] += 1
            pool.append(_Worker(ctx, outbox, fn))

    try:
        if workers > 1 and total > 1:
            pool = [_Worker(ctx, outbox, fn)
                    for _ in range(min(workers, len(queue)))]
        else:
            degraded = True

        while sum(done) + sum(failed) < total:
            if degraded:
                for worker in pool:
                    if worker.assignment is not None:
                        retry_or_fail(worker.assignment.indices, "crash",
                                      "pool degraded with assignment live")
                        worker.assignment = None
                    worker.destroy()
                pool.clear()
                yield from run_serially(
                    [i for chunk in queue for i in chunk])
                queue.clear()
                break

            now = time.monotonic()
            # Hand ready chunks to idle workers, in order.
            idle = [worker for worker in pool if worker.assignment is None]
            while idle and queue:
                chunk = queue[0]
                if any(ready_at[i] > now for i in chunk):
                    break  # backoff gate: keep dispatch in plan order
                if blocked_on_deps(chunk):
                    break  # dependency gate: hold plan order
                queue.popleft()
                chunk = [i for i in chunk if not done[i] and not failed[i]]
                if not chunk:
                    continue
                deadline = (now + timeout * len(chunk)) if timeout else None
                worker = idle.pop(0)
                worker.assign(_Assignment(next(task_ids), chunk,
                                          attempts[chunk[0]], deadline),
                              scope, payloads)
                for index in chunk:
                    if not started[index]:
                        started[index] = True
                        yield ("start", index)

            busy = [worker for worker in pool if worker.assignment is not None]
            if not busy and not queue:
                break
            if not busy:
                # Everything is backing off; sleep to the earliest gate.
                gates = [ready_at[i] for chunk in queue for i in chunk
                         if ready_at[i] > now]
                time.sleep(min(_POLL_SECONDS * 4,
                               max(0.001, (min(gates) if gates else 0) - now)))
                continue

            try:
                message = outbox.get(timeout=_POLL_SECONDS)
            except Exception:  # queue.Empty
                message = None

            if message is not None:
                task_id = message[0]
                owner = next((worker for worker in busy
                              if worker.assignment is not None
                              and worker.assignment.task_id == task_id), None)
                if message[1] == "ok":
                    _task_id, _status, pairs, delta = message
                    merge_counters(delta)
                    if owner is not None:
                        owner.assignment = None
                    for index, value in pairs:
                        if not done[index] and not failed[index]:
                            done[index] = True
                            yield ("done", index, value)
                elif owner is not None:
                    # A job exception is permanent (deterministic jobs raise
                    # again on retry); chunk-mates after the failing job
                    # never ran, so requeue them without charging an attempt.
                    _task_id, _status, bad, text, pairs, delta = message
                    merge_counters(delta)
                    assignment = owner.assignment
                    owner.assignment = None
                    completed = [(index, value) for index, value in pairs
                                 if not done[index] and not failed[index]]
                    for index, _value in completed:
                        done[index] = True
                    fail(bad, "exception", text.strip().splitlines()[-1])
                    unstarted = [i for i in assignment.indices
                                 if i != bad and not done[i]
                                 and not failed[i]]
                    if unstarted:
                        queue.appendleft(unstarted)
                    for index, value in completed:
                        yield ("done", index, value)
                else:
                    # Stale error reply from a worker already written off
                    # as crashed/hung — its jobs are being retried; the
                    # retry will re-raise and fail them properly.
                    merge_counters(message[5])
                continue

            now = time.monotonic()
            for worker in list(pool):
                assignment = worker.assignment
                if assignment is None:
                    continue
                if not worker.process.is_alive():
                    handle_dead_assignment(
                        worker, "crash",
                        f"worker died (exit code "
                        f"{worker.process.exitcode})")
                elif assignment.deadline and now > assignment.deadline:
                    handle_dead_assignment(
                        worker, "timeout",
                        f"deadline exceeded "
                        f"({timeout * len(assignment.indices):g}s)")

        if sum(done) + sum(failed) < total:  # pragma: no cover - safety net
            yield from run_serially(range(total))
    finally:
        for worker in pool:
            worker.stop()
        for worker in pool:
            worker.destroy()
        pool.clear()
        outbox.close()
        outbox.join_thread()

    merge_counters(stats)
    run_stats = counters_delta(before_counters)
    if failures:
        raise ExperimentFailure(sorted(failures, key=lambda f: f.index))
    return run_stats


def run_supervised(fn: Callable[[Any], Any], payloads: Sequence[Any],
                   workers: int, *, scope: str = "job",
                   labels: Optional[Sequence[str]] = None,
                   chunksize: int = 1,
                   timeout: Optional[float] = None,
                   retries: Optional[int] = None,
                   degrade_after: Optional[int] = None,
                   ) -> Tuple[List[Any], Dict[str, int]]:
    """Execute ``payloads`` through ``fn`` on a supervised worker pool.

    Returns ``(results, stats)`` with results in input order.  ``fn`` must
    be deterministic by value (retries re-execute it).  ``chunksize``
    batches consecutive payloads per assignment (trace-memo locality, IPC
    amortisation) — a failed chunk is retried as single-job assignments so
    one poisoned job never drags its chunk-mates through every retry.
    Assignments are handed to idle workers in list order, preserving the
    FIFO dispatch invariant checkpoint shard chains rely on.

    Failure semantics: worker crashes and deadline expiries are retried
    (``retries``, default ``REPRO_RETRIES``) with exponential backoff and
    deterministic jitter; job exceptions are permanent immediately.  Every
    crash respawns the dead worker; once crash deaths exceed
    ``degrade_after`` the pool is torn down and the remaining jobs run
    serially in-process.  When any job fails permanently the remaining
    jobs still complete, then :class:`ExperimentFailure` is raised with
    the full per-job report.  The pool is always torn down on exit —
    including ``KeyboardInterrupt`` — so no worker processes outlive the
    call.

    This is a thin collector over :func:`supervised_events` (one scheduler
    implementation, two consumption styles); the event stream is what the
    backend/dispatch seam uses.
    """
    payloads = list(payloads)
    results: List[Any] = [None] * len(payloads)
    events = supervised_events(fn, payloads, workers, scope=scope,
                               labels=labels, chunksize=chunksize,
                               timeout=timeout, retries=retries,
                               degrade_after=degrade_after)
    while True:
        try:
            event = next(events)
        except StopIteration as stop:
            return results, dict(stop.value or {})
        if event[0] == "done":
            results[event[1]] = event[2]
